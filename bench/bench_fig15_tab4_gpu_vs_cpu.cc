// Figure 15 + Table 4 — GPU DPF acceleration vs the optimized CPU baseline
// (single-threaded and 32-threaded), AES-128 PRF, 2048-bit entries.
// Also prints the paper's "Bytes" column (serialized DPF key size) and the
// Section 3.2.7 multi-GPU scaling appendix.
#include <cstdio>
#include <thread>

#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/dpf/dpf.h"
#include "src/gpusim/cost_model.h"
#include "src/kernels/scheduler.h"
#include "src/kernels/strategy.h"
#include "src/pir/protocol.h"
#include "src/pir/table.h"

using namespace gpudpf;

int main() {
    std::printf("=== Table 4 / Figure 15: GPU vs CPU DPF-PIR ===\n");
    std::printf("entry 2048 bits, AES-128 (CPU baseline uses AES-NI-class rates)\n\n");
    const GpuCostModel gpu_model;
    const CpuCostModel cpu_model;
    const KernelScheduler scheduler(gpu_model);
    Rng rng(1);

    TablePrinter table({"entries", "key bytes", "strategy", "QPS",
                        "latency (ms)", "speedup vs CPU-32"});
    for (const int n : {14, 20, 22}) {
        const std::uint64_t L = std::uint64_t{1} << n;
        // Key size: serialize a real key.
        const Dpf dpf(DpfParams{n, PrfKind::kAes128, 1});
        auto [k0, k1] = dpf.GenIndicator(1, rng);
        const std::size_t key_bytes = k0.SerializedSize();

        // GPU: scheduler-chosen configuration (all optimizations).
        const auto decision =
            scheduler.Plan(n, L, 256, PrfKind::kAes128, 0.5);
        const auto gpu = decision.estimate;

        // CPU baseline: one full-domain evaluation per query.
        StrategyConfig cpu_config;
        cpu_config.kind = StrategyKind::kCpuSequential;
        cpu_config.log_domain = n;
        cpu_config.num_entries = L;
        cpu_config.entry_bytes = 256;
        cpu_config.prf = PrfKind::kAes128;
        const auto cpu_report = MakeStrategy(cpu_config)->Analyze();
        const auto cpu1 = cpu_model.Estimate(
            PrfKind::kAes128, cpu_report.metrics.prf_expansions,
            cpu_report.metrics.mac128_ops, 1, 1);
        const auto cpu32 = cpu_model.Estimate(
            PrfKind::kAes128, cpu_report.metrics.prf_expansions,
            cpu_report.metrics.mac128_ops, 1, 32);

        const std::string size_label =
            n == 14 ? "16K" : (n == 20 ? "1M" : "4M");
        table.AddRow({size_label, std::to_string(key_bytes),
                      std::string("GPU (") +
                          StrategyKindName(decision.config.kind) + ", b=" +
                          std::to_string(decision.config.batch) + ")",
                      TablePrinter::Num(gpu.throughput_qps, 0),
                      TablePrinter::Num(gpu.latency_sec * 1e3, 2),
                      TablePrinter::Num(gpu.throughput_qps /
                                            cpu32.throughput_qps,
                                        1) + "x"});
        table.AddRow({size_label, std::to_string(key_bytes), "CPU 1-thread",
                      TablePrinter::Num(cpu1.throughput_qps, 2),
                      TablePrinter::Num(cpu1.latency_sec * 1e3, 1), "-"});
        table.AddRow({size_label, std::to_string(key_bytes), "CPU 32-thread",
                      TablePrinter::Num(cpu32.throughput_qps, 1),
                      TablePrinter::Num(cpu32.latency_sec * 1e3, 2), "1.0x"});
    }
    table.Print();

    std::printf("\n=== Figure 15: GPU throughput across table sizes ===\n\n");
    TablePrinter fig15({"entries", "GPU kq/s", "CPU-32 kq/s", "CPU-1 kq/s",
                        "GPU/CPU-32"});
    for (int n = 12; n <= 24; n += 2) {
        const std::uint64_t L = std::uint64_t{1} << n;
        const auto decision =
            scheduler.Plan(n, L, 256, PrfKind::kAes128, 1.0);
        StrategyConfig cpu_config;
        cpu_config.kind = StrategyKind::kCpuSequential;
        cpu_config.log_domain = n;
        cpu_config.num_entries = L;
        cpu_config.entry_bytes = 256;
        cpu_config.prf = PrfKind::kAes128;
        const auto cpu_report = MakeStrategy(cpu_config)->Analyze();
        const auto cpu1 = cpu_model.Estimate(
            PrfKind::kAes128, cpu_report.metrics.prf_expansions,
            cpu_report.metrics.mac128_ops, 1, 1);
        const auto cpu32 = cpu_model.Estimate(
            PrfKind::kAes128, cpu_report.metrics.prf_expansions,
            cpu_report.metrics.mac128_ops, 1, 32);
        fig15.AddRow(
            {"2^" + std::to_string(n),
             TablePrinter::Num(decision.estimate.throughput_qps / 1e3, 2),
             TablePrinter::Num(cpu32.throughput_qps / 1e3, 3),
             TablePrinter::Num(cpu1.throughput_qps / 1e3, 4),
             TablePrinter::Num(decision.estimate.throughput_qps /
                                   cpu32.throughput_qps,
                               1) + "x"});
    }
    fig15.Print();

    std::printf("\n=== Section 3.2.7 appendix: multi-GPU scaling (L=2^24) ===\n\n");
    StrategyConfig config;
    config.kind = StrategyKind::kMemBoundTree;
    config.log_domain = 24;
    config.num_entries = 1ull << 24;
    config.entry_bytes = 256;
    config.prf = PrfKind::kAes128;
    config.batch = 512;
    const auto report = MakeStrategy(config)->Analyze();
    TablePrinter multi({"GPUs", "QPS", "scaling"});
    const double base = gpu_model.Estimate(report).throughput_qps;
    for (int g : {1, 2, 4, 8}) {
        const auto est = gpu_model.EstimateMultiGpu(report, g);
        multi.AddRow({std::to_string(g),
                      TablePrinter::Num(est.throughput_qps, 0),
                      TablePrinter::Num(est.throughput_qps / base, 2) + "x"});
    }
    multi.Print();

    // Host-measured CPU baseline: the modeled CPU rows above assume
    // AES-NI-class single-thread rates; these are real wall-clock numbers
    // for the sequential reference answer path vs the sharded engine
    // (PirServer + ShardingOptions) on THIS host, ChaCha20 PRF so the
    // software PRF cost stays representative.
    std::printf(
        "\n=== Host-measured CPU: sequential reference vs sharded engine "
        "(2^14 entries, 256 B, ChaCha20) ===\n\n");
    const std::uint64_t host_n = 1ull << 14;
    const std::size_t host_batch = 4;
    PirTable host_table(host_n, 256);
    host_table.FillRandom(rng);
    PirClient host_client(14, PrfKind::kChacha20, /*seed=*/3);
    std::vector<std::vector<std::uint8_t>> host_keys;
    for (std::size_t i = 0; i < host_batch; ++i) {
        host_keys.push_back(host_client.Query((i * 5003) % host_n)
                                .key_for_server0);
    }
    TablePrinter host({"config", "batch ms", "QPS", "speedup"});
    PirServer host_seq(&host_table);
    Timer seq_timer;
    for (const auto& k : host_keys) host_seq.Answer(k.data(), k.size());
    const double seq_sec = seq_timer.ElapsedSeconds();
    host.AddRow({"sequential reference", TablePrinter::Num(seq_sec * 1e3, 2),
                 TablePrinter::Num(host_batch / seq_sec, 1), "1.0x"});
    const std::size_t host_threads =
        std::max(1u, std::thread::hardware_concurrency());
    ThreadPool host_pool(host_threads);
    PirServer host_sharded(&host_table,
                           ShardingOptions{2 * host_threads, &host_pool});
    Timer sharded_timer;
    host_sharded.BatchAnswer(host_keys);
    const double sharded_sec = sharded_timer.ElapsedSeconds();
    char host_label[64];
    std::snprintf(host_label, sizeof(host_label),
                  "sharded batched (t=%zu)", host_threads);
    host.AddRow({host_label, TablePrinter::Num(sharded_sec * 1e3, 2),
                 TablePrinter::Num(host_batch / sharded_sec, 1),
                 TablePrinter::Num(seq_sec / sharded_sec, 1) + "x"});
    host.Print();

    std::printf(
        "\nShape check vs paper (Table 4): GPU sustains >17x the "
        "32-thread CPU at every size; key bytes grow logarithmically; "
        "multi-GPU scales linearly (embarrassingly parallel reduction); "
        "the sharded host path tracks the physical core count.\n");
    return 0;
}

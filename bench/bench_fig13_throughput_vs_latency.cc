// Figure 13 — throughput vs latency Pareto frontier for every GPU
// optimization stage: branch-parallel, level-by-level, memory-bounded tree
// traversal + fusion, and batch/table-size-aware scheduling with
// cooperative groups. Left: 1M-entry table; right: 16M-entry table.
#include <cstdio>

#include "src/common/table_printer.h"
#include "src/gpusim/cost_model.h"
#include "src/kernels/strategy.h"

using namespace gpudpf;

namespace {

void Sweep(const GpuCostModel& model, int n) {
    std::printf("--- table with 2^%d entries ---\n", n);
    TablePrinter table({"strategy", "batch", "latency (ms)", "QPS",
                        "fits memory"});
    struct Case {
        StrategyKind kind;
        bool fuse;
    };
    const Case cases[] = {{StrategyKind::kBranchParallel, false},
                          {StrategyKind::kLevelByLevel, false},
                          {StrategyKind::kMemBoundTree, true},
                          {StrategyKind::kCoopGroups, true}};
    for (const auto& c : cases) {
        for (std::uint32_t b = 1; b <= 2048; b *= 8) {
            if (c.kind == StrategyKind::kCoopGroups && b > 1) continue;
            StrategyConfig config;
            config.kind = c.kind;
            config.log_domain = n;
            config.num_entries = std::uint64_t{1} << n;
            config.entry_bytes = 256;
            config.prf = PrfKind::kAes128;
            config.batch = b;
            config.chunk_k = 128;
            config.block_dim =
                c.kind == StrategyKind::kCoopGroups ? 256 : 128;
            config.fuse = c.fuse;
            const auto report = MakeStrategy(config)->Analyze();
            const auto est = model.Estimate(report);
            table.AddRow({StrategyKindName(c.kind), std::to_string(b),
                          TablePrinter::Num(est.latency_sec * 1e3, 2),
                          TablePrinter::Num(est.throughput_qps, 1),
                          est.fits_in_memory ? "yes" : "NO"});
        }
    }
    table.Print();
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("=== Figure 13: throughput vs latency per GPU optimization ===\n");
    std::printf("entry 2048 bits, AES-128 PRF\n\n");
    const GpuCostModel model;
    Sweep(model, 20);
    Sweep(model, 24);
    std::printf(
        "Shape check vs paper: branch-parallel cannot reach high QPS "
        "(redundant work); level-by-level runs out of memory at large "
        "batches (rows marked NO); membound+fusion pushes the frontier "
        "with batching; on the very large table coop-groups achieves far "
        "better latency at comparable throughput.\n");
    return 0;
}

// Figure 16 — computation (a) and communication (b) needed to reach the
// Acc-relaxed quality target, with and without PIR-ML co-design.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

// Cheapest point of a frontier meeting the relaxed target, by `metric`.
template <typename Metric>
const SweepPoint* Cheapest(const std::vector<SweepPoint>& frontier,
                           const QualityTargets& targets, Metric metric,
                           double budget_on_other,
                           bool budget_is_comm) {
    const SweepPoint* best = nullptr;
    for (const auto& p : frontier) {
        if (!targets.MeetsRelaxed(p.quality)) continue;
        const double other = budget_is_comm ? p.comm_bytes
                                            : p.prf_per_inference;
        if (other > budget_on_other) continue;
        if (best == nullptr || metric(p) < metric(*best)) best = &p;
    }
    return best;
}

template <typename App>
void RunApp(const App& app, const std::vector<std::uint64_t>& q_grid,
            double comp_budget_prfs) {
    const QualityTargets targets = app.Targets();
    const auto quality_fn = app.MakeQualityFn();
    CodesignEvaluator evaluator(app.emb->vocab(), app.entry_bytes(),
                                &app.stats, app.eval_wanted, quality_fn,
                                PrfKind::kChacha20, 256, app.cost_scale);
    const auto baseline = evaluator.BaselineFrontier(q_grid);
    const auto codesign = evaluator.CodesignFrontier(q_grid);

    auto comp = [](const SweepPoint& p) { return p.prf_per_inference; };
    auto comm = [](const SweepPoint& p) { return p.comm_bytes; };

    // (a) computation at fixed communication (< 300 KB).
    const SweepPoint* base_comp =
        Cheapest(baseline, targets, comp, 300e3, true);
    const SweepPoint* co_comp =
        Cheapest(codesign, targets, comp, 300e3, true);
    // (b) communication at fixed computation.
    const SweepPoint* base_comm =
        Cheapest(baseline, targets, comm, comp_budget_prfs, false);
    const SweepPoint* co_comm =
        Cheapest(codesign, targets, comm, comp_budget_prfs, false);

    TablePrinter table({"metric", "batch-PIR", "w/ co-design", "saving"});
    auto add = [&](const char* name, const SweepPoint* a, const SweepPoint* b,
                   bool bytes) {
        auto fmt = [&](const SweepPoint* p, double v) {
            if (p == nullptr) return std::string("(target unreachable)");
            return bytes ? FormatBytes(v) : FormatCount(v);
        };
        const double va = a ? (bytes ? a->comm_bytes : a->prf_per_inference)
                            : 0;
        const double vb = b ? (bytes ? b->comm_bytes : b->prf_per_inference)
                            : 0;
        table.AddRow({name, fmt(a, va), fmt(b, vb),
                      (a && b && vb > 0)
                          ? TablePrinter::Num(va / vb, 1) + "x"
                          : "-"});
    };
    std::printf("--- %s (quality target: %s %.4f) ---\n", app.name.c_str(),
                targets.higher_is_better ? "AUC >=" : "ppl <=",
                targets.relaxed);
    add("computation (PRFs/inference, comm<300KB)", base_comp, co_comp,
        false);
    add("communication (bytes/inference, comp budget)", base_comm, co_comm,
        true);
    table.Print();
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("=== Figure 16: co-design computation & communication savings ===\n\n");
    const LmApp wikitext = BuildWikiTextApp();
    RunApp(wikitext, {1, 2, 4, 8}, /*comp_budget_prfs=*/100e3);
    const RecApp movielens = BuildMovieLensApp();
    RunApp(movielens, {2, 4, 8, 16, 32}, /*comp_budget_prfs=*/100e3);
    const RecApp taobao = BuildTaobaoApp();
    RunApp(taobao, {1, 2, 4}, /*comp_budget_prfs=*/5e6);
    std::printf(
        "Shape check vs paper: co-design reduces computation ~2-7x at "
        "fixed quality; communication improves for Wikitext2/MovieLens "
        "while Taobao's communication is already tiny (few KB) and does "
        "not move.\n");
    return 0;
}

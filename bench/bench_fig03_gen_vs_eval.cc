// Figure 3 — Gen vs Eval cost across table sizes.
//
// Reproduces the paper's observation that client-side key generation is
// O(log L) and negligible, while server-side full-domain evaluation is
// O(L) and the optimization target. Host wall-clock is measured for both
// (sequential reference implementation), alongside the operation counts.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/common/timer.h"
#include "src/dpf/dpf.h"

using namespace gpudpf;

int main() {
    std::printf("=== Figure 3: Gen vs Eval performance ===\n");
    std::printf("(host wall-clock of the sequential reference, ChaCha20 PRG)\n\n");

    TablePrinter table({"table size", "Gen (us)", "Eval (ms)",
                        "Eval/Gen ratio", "Gen expansions",
                        "Eval expansions"});
    Rng rng(1);
    for (int n = 10; n <= 20; n += 2) {
        const Dpf dpf(DpfParams{n, PrfKind::kChacha20, 1});
        const std::uint64_t L = dpf.domain_size();

        // Gen: average over repetitions (it is microseconds-fast).
        constexpr int kGenReps = 200;
        Timer gen_timer;
        std::pair<DpfKey, DpfKey> keys = dpf.GenIndicator(L / 3, rng);
        for (int r = 1; r < kGenReps; ++r) {
            keys = dpf.GenIndicator((L / 3 + r) % L, rng);
        }
        const double gen_us = gen_timer.ElapsedSeconds() / kGenReps * 1e6;

        Timer eval_timer;
        std::vector<u128> out;
        dpf.EvalFullDomain(keys.first, &out);
        const double eval_ms = eval_timer.ElapsedMillis();

        table.AddRow({"2^" + std::to_string(n), TablePrinter::Num(gen_us, 1),
                      TablePrinter::Num(eval_ms, 2),
                      TablePrinter::Num(eval_ms * 1e3 / gen_us, 0),
                      std::to_string(2 * n),  // both parties' trees at Gen
                      std::to_string(L - 1)});
    }
    table.Print();
    std::printf(
        "\nShape check vs paper: Gen stays flat in the microsecond range "
        "while Eval grows linearly with L — Eval is the acceleration "
        "target.\n");
    return 0;
}

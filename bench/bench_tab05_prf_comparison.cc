// Table 5 — DPF-PIR performance under different PRFs (1M-entry table,
// batch 512, 128-bit security parameter), plus a host-side validation
// column: real measured expansion throughput of each PRF implementation,
// confirming the relative ordering is a property of the algorithms, not
// just of the calibration constants.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/common/timer.h"
#include "src/crypto/prg.h"
#include "src/gpusim/cost_model.h"
#include "src/kernels/strategy.h"

using namespace gpudpf;

namespace {

// Host-measured expansions/second for one PRF (single thread).
double MeasureHostExpandRate(PrfKind kind) {
    const Prg prg(kind);
    Rng rng(7);
    u128 seed = rng.Next128();
    constexpr int kIters = 60'000;
    Timer timer;
    u128 l = 0;
    u128 r = 0;
    for (int i = 0; i < kIters; ++i) {
        prg.Expand(seed, &l, &r);
        seed = l ^ r;  // serial dependency, like a tree walk
    }
    const double secs = timer.ElapsedSeconds();
    // Keep the compiler from dropping the loop.
    if (Lo64(seed) == 0xdeadbeef) std::printf(" ");
    return kIters / secs;
}

const char* PrfTypeLabel(PrfKind kind) {
    switch (kind) {
        case PrfKind::kAes128: return "Block Cipher (Ctr Mode)";
        case PrfKind::kSha256: return "Hash (HMAC)";
        case PrfKind::kChacha20: return "Stream Cipher";
        case PrfKind::kSipHash: return "PRF";
        case PrfKind::kHighwayHash: return "PRF";
    }
    return "";
}

}  // namespace

int main() {
    std::printf("=== Table 5: PRF comparison (L=1,048,576, batch 512) ===\n\n");
    const GpuCostModel model;
    TablePrinter table({"PRF", "type", "latency (ms)", "QPS",
                        "host expand/s (measured)", "standardized"});
    for (const PrfKind kind : AllPrfKinds()) {
        StrategyConfig config;
        config.kind = StrategyKind::kMemBoundTree;
        config.log_domain = 20;
        config.num_entries = 1 << 20;
        config.entry_bytes = 256;
        config.prf = kind;
        config.batch = 512;
        config.chunk_k = 128;
        const auto est = model.Estimate(MakeStrategy(config)->Analyze());
        const double host_rate = MeasureHostExpandRate(kind);
        table.AddRow({PrfKindName(kind), PrfTypeLabel(kind),
                      TablePrinter::Num(est.latency_sec * 1e3, 0),
                      TablePrinter::Num(est.throughput_qps, 0),
                      TablePrinter::Num(host_rate / 1e6, 2) + " M/s",
                      GetPrfCostProfile(kind).standardized ? "yes"
                                                            : "no (weaker)"});
    }
    table.Print();
    std::printf(
        "\nShape check vs paper: ChaCha20 ~3.8x AES on the modeled GPU "
        "(ARX maps to plain ALUs; AES lacks hardware support on GPUs); "
        "SipHash is fastest but less conservatively analyzed; SHA-256 "
        "tracks AES. The measured host column shows the same ordering for "
        "the software implementations.\n");
    return 0;
}

// Figure 11 + Table 3 — end-to-end system throughput across the three
// applications, for the paper's four configurations:
//   CPU baseline / GPU (ours) / GPU+Co-design (ours) /
//   GPU+Co-design+ChaCha20 (ours),
// each at two quality regimes (Acc-eco: full quality; Acc-relaxed: <0.5%
// AUC or <5% ppl degradation), all within the <300 KB / <300 ms budgets.
//
// Model quality per configuration is MEASURED: the oblivious planner is
// replayed over held-out inferences and the trained model is evaluated
// under the resulting retrieval masks.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

struct AppResult {
    std::string name;
    double cpu_eco = 0, cpu_relaxed = 0;
    double gpu_eco = 0, gpu_relaxed = 0;
    double co_eco = 0, co_relaxed = 0;
    double chacha_eco = 0, chacha_relaxed = 0;
};

template <typename App>
AppResult RunApp(const App& app, const std::vector<std::uint64_t>& q_grid) {
    AppResult result;
    result.name = app.name;
    const QualityTargets targets = app.Targets();
    const auto quality_fn = app.MakeQualityFn();

    auto frontier_for = [&](PrfKind prf, bool codesign) {
        CodesignEvaluator evaluator(app.emb->vocab(), app.entry_bytes(),
                                    &app.stats, app.eval_wanted, quality_fn,
                                    prf, /*inference_batch=*/256, app.cost_scale);
        return codesign ? evaluator.CodesignFrontier(q_grid)
                        : evaluator.BaselineFrontier(q_grid);
    };

    const auto base_aes = frontier_for(PrfKind::kAes128, false);
    const auto co_aes = frontier_for(PrfKind::kAes128, true);
    const auto co_chacha = frontier_for(PrfKind::kChacha20, true);

    BudgetFilter gpu_filter;
    BudgetFilter cpu_filter;
    cpu_filter.use_cpu_qps = true;
    cpu_filter.max_latency_sec = 1e9;  // CPU baseline is throughput-ranked

    auto qps = [](const SweepPoint* p, bool cpu) {
        return p == nullptr ? 0.0 : (cpu ? p->cpu_qps : p->gpu_qps);
    };
    result.cpu_eco = qps(BestPoint(base_aes, targets, false, cpu_filter), true);
    result.cpu_relaxed =
        qps(BestPoint(base_aes, targets, true, cpu_filter), true);
    result.gpu_eco =
        qps(BestPoint(base_aes, targets, false, gpu_filter), false);
    result.gpu_relaxed =
        qps(BestPoint(base_aes, targets, true, gpu_filter), false);
    result.co_eco = qps(BestPoint(co_aes, targets, false, gpu_filter), false);
    result.co_relaxed =
        qps(BestPoint(co_aes, targets, true, gpu_filter), false);
    result.chacha_eco =
        qps(BestPoint(co_chacha, targets, false, gpu_filter), false);
    result.chacha_relaxed =
        qps(BestPoint(co_chacha, targets, true, gpu_filter), false);
    return result;
}

void PrintApp(const AppResult& r) {
    std::printf("--- %s ---\n", r.name.c_str());
    TablePrinter table({"configuration", "Acc-eco QPS", "Acc-relaxed QPS",
                        "eco norm (vs CPU)", "relaxed norm"});
    const double norm = r.cpu_eco > 0 ? r.cpu_eco : 1.0;
    auto row = [&](const char* name, double eco, double relaxed) {
        table.AddRow({name, TablePrinter::Num(eco, 1),
                      TablePrinter::Num(relaxed, 1),
                      TablePrinter::Num(eco / norm, 1) + "x",
                      TablePrinter::Num(relaxed / norm, 1) + "x"});
    };
    row("CPU baseline (batch-PIR)", r.cpu_eco, r.cpu_relaxed);
    row("GPU (Ours)", r.gpu_eco, r.gpu_relaxed);
    row("GPU + Co-design (Ours)", r.co_eco, r.co_relaxed);
    row("GPU + Co-design + ChaCha20 (Ours)", r.chacha_eco, r.chacha_relaxed);
    table.Print();
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("=== Figure 11 / Table 3: end-to-end throughput ===\n");
    std::printf("budgets: comm < 300 KB, latency < 300 ms; QPS = private "
                "inferences/second\n\n");

    const LmApp wikitext = BuildWikiTextApp();
    const AppResult lm =
        RunApp(wikitext, {1, 2, 4, 8});
    const RecApp movielens = BuildMovieLensApp();
    const AppResult ml20 =
        RunApp(movielens, {2, 4, 8, 16, 32});
    const RecApp taobao = BuildTaobaoApp();
    const AppResult tb = RunApp(taobao, {1, 2, 4});

    PrintApp(lm);
    PrintApp(ml20);
    PrintApp(tb);

    std::printf(
        "Shape check vs paper: GPU alone gives an order of magnitude over "
        "the CPU baseline; co-design adds more at fixed quality; relaxing "
        "quality (Acc-relaxed) buys another multiple; Taobao QPS is far "
        "higher than the others because it queries ~2.68 entries per "
        "inference vs ~72 for MovieLens.\n");
    return 0;
}

// google-benchmark microbenchmarks: DPF Gen / point Eval / full-domain
// Eval and the parallel kernel strategies on the host.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/dpf/dpf.h"
#include "src/kernels/strategy.h"

namespace gpudpf {
namespace {

void BM_DpfGen(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const Dpf dpf(DpfParams{n, PrfKind::kChacha20, 1});
    Rng rng(1);
    std::uint64_t alpha = 0;
    for (auto _ : state) {
        auto keys = dpf.GenIndicator(alpha++ % dpf.domain_size(), rng);
        benchmark::DoNotOptimize(keys.first.root_seed);
    }
    state.SetLabel("log_domain=" + std::to_string(n));
}
BENCHMARK(BM_DpfGen)->Arg(10)->Arg(16)->Arg(20)->Arg(24);

void BM_DpfEvalPoint(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const Dpf dpf(DpfParams{n, PrfKind::kChacha20, 1});
    Rng rng(2);
    auto keys = dpf.GenIndicator(3, rng);
    std::uint64_t x = 0;
    u128 out;
    for (auto _ : state) {
        dpf.EvalPoint(keys.first, x++ % dpf.domain_size(), &out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_DpfEvalPoint)->Arg(10)->Arg(20);

void BM_DpfEvalFullDomain(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const Dpf dpf(DpfParams{n, PrfKind::kChacha20, 1});
    Rng rng(3);
    auto keys = dpf.GenIndicator(5, rng);
    std::vector<u128> out;
    for (auto _ : state) {
        dpf.EvalFullDomain(keys.first, &out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            << n);
}
BENCHMARK(BM_DpfEvalFullDomain)->Arg(10)->Arg(14)->Arg(18);

void BM_StrategyHostRun(benchmark::State& state) {
    const auto kind = static_cast<StrategyKind>(state.range(0));
    const int n = 12;
    StrategyConfig config;
    config.kind = kind;
    config.log_domain = n;
    config.num_entries = 1 << n;
    config.entry_bytes = 64;
    config.prf = PrfKind::kChacha20;
    config.batch = 8;
    config.chunk_k = 64;
    config.fuse = true;
    if (kind == StrategyKind::kCoopGroups) config.block_dim = 256;

    const Dpf dpf(DpfParams{n, PrfKind::kChacha20, 1});
    Rng rng(4);
    PirTable table(1 << n, 64);
    table.FillRandom(rng);
    std::vector<DpfKey> keys;
    std::vector<const DpfKey*> ptrs;
    for (std::uint32_t i = 0; i < config.batch; ++i) {
        keys.push_back(dpf.GenIndicator(i * 17 % (1 << n), rng).first);
    }
    for (const auto& k : keys) ptrs.push_back(&k);

    GpuDevice device;
    const auto strategy = MakeStrategy(config);
    for (auto _ : state) {
        auto result = strategy->Run(device, dpf, table, ptrs);
        benchmark::DoNotOptimize(result.responses[0][0]);
    }
    state.SetLabel(StrategyKindName(kind));
}
BENCHMARK(BM_StrategyHostRun)
    ->Arg(static_cast<int>(StrategyKind::kBranchParallel))
    ->Arg(static_cast<int>(StrategyKind::kLevelByLevel))
    ->Arg(static_cast<int>(StrategyKind::kMemBoundTree))
    ->Arg(static_cast<int>(StrategyKind::kCoopGroups))
    ->Arg(static_cast<int>(StrategyKind::kCpuMultiThread))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gpudpf

BENCHMARK_MAIN();

// Figure 9 — GPU utilization as a function of (a) batch size and (b) table
// size with batch=1 (cooperative groups vs batched membound execution).
#include <cstdio>

#include "src/common/table_printer.h"
#include "src/gpusim/cost_model.h"
#include "src/kernels/strategy.h"

using namespace gpudpf;

int main() {
    const GpuCostModel model;

    std::printf("=== Figure 9a: utilization vs batch size (membound, K=128) ===\n\n");
    TablePrinter batch_table({"batch", "util (L=2^14)", "util (L=2^17)",
                              "util (L=2^20)"});
    for (std::uint32_t b = 1; b <= 4096; b *= 4) {
        std::vector<std::string> row{std::to_string(b)};
        for (int n : {14, 17, 20}) {
            StrategyConfig config;
            config.kind = StrategyKind::kMemBoundTree;
            config.log_domain = n;
            config.num_entries = std::uint64_t{1} << n;
            config.entry_bytes = 256;
            config.batch = b;
            config.chunk_k = 128;
            const auto est = model.Estimate(MakeStrategy(config)->Analyze());
            row.push_back(TablePrinter::Num(est.utilization * 100, 1) + "%");
        }
        batch_table.AddRow(row);
    }
    batch_table.Print();

    std::printf(
        "\n=== Figure 9b: utilization vs table size, batch=1 "
        "(batched membound vs cooperative groups) ===\n\n");
    TablePrinter size_table({"L", "membound batch=1", "coop-groups",
                             "coop latency (ms)", "membound latency (ms)"});
    for (int n = 16; n <= 26; n += 2) {
        StrategyConfig config;
        config.log_domain = n;
        config.num_entries = std::uint64_t{1} << n;
        config.entry_bytes = 256;
        config.prf = PrfKind::kAes128;
        config.batch = 1;
        config.chunk_k = 128;
        config.kind = StrategyKind::kMemBoundTree;
        const auto mb = model.Estimate(MakeStrategy(config)->Analyze());
        config.kind = StrategyKind::kCoopGroups;
        config.block_dim = 256;
        const auto coop = model.Estimate(MakeStrategy(config)->Analyze());
        size_table.AddRow(
            {"2^" + std::to_string(n),
             TablePrinter::Num(mb.utilization * 100, 1) + "%",
             TablePrinter::Num(coop.utilization * 100, 1) + "%",
             TablePrinter::Num(coop.latency_sec * 1e3, 2),
             TablePrinter::Num(mb.latency_sec * 1e3, 2)});
    }
    size_table.Print();
    std::printf(
        "\nShape check vs paper: utilization climbs with batch size; with "
        "batch=1, cooperative groups reach high utilization only on very "
        "large tables (>= 2^22, the paper's scheduling threshold) and win "
        "on latency there, while small tables leave the grid idle.\n");
    return 0;
}

// Figure 18 — system throughput vs model quality (perplexity) for the
// language model, batch-PIR vs batch-PIR + co-design, under two service
// budgets: (comm=100KB, lat=50ms) and (comm=300KB, lat=200ms).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

void PrintBudget(const std::vector<SweepPoint>& base,
                 const std::vector<SweepPoint>& co, double comm_budget,
                 double lat_budget) {
    std::printf("--- budget: comm=%.0fKB, lat=%.0fms ---\n",
                comm_budget / 1e3, lat_budget * 1e3);
    TablePrinter table({"scheme", "QPS (x1000)", "quality (ppl)",
                        "comm (KB)"});
    auto emit = [&](const char* name, const std::vector<SweepPoint>& pts) {
        for (const auto& p : pts) {
            if (p.comm_bytes > comm_budget) continue;
            if (p.gpu_latency_sec > lat_budget) continue;
            table.AddRow({name, TablePrinter::Num(p.gpu_qps / 1e3, 2),
                          TablePrinter::Num(p.quality, 1),
                          TablePrinter::Num(p.comm_bytes / 1e3, 1)});
        }
    };
    emit("batch-pir", base);
    emit("batch-pir w/ co-design", co);
    table.Print();
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("=== Figure 18: LM throughput vs perplexity ===\n\n");
    const LmApp app = BuildWikiTextApp();
    std::printf("clean perplexity: %.1f\n\n", app.clean_quality);
    const auto quality_fn = app.MakeQualityFn();
    CodesignEvaluator evaluator(app.emb->vocab(), app.entry_bytes(),
                                &app.stats, app.eval_wanted, quality_fn,
                                PrfKind::kChacha20, 256, app.cost_scale);
    const std::vector<std::uint64_t> q_grid{1, 2, 4, 8};
    const auto base = evaluator.BaselineFrontier(q_grid);
    const auto co = evaluator.CodesignFrontier(q_grid);

    PrintBudget(base, co, 100e3, 0.05);
    PrintBudget(base, co, 300e3, 0.20);
    std::printf(
        "Shape check vs paper: under the tight budget, co-design reaches "
        "lower perplexity at the same throughput (its points dominate); "
        "with the loose budget the curves converge.\n");
    return 0;
}

// Shared setup for the figure/table benches: builds the three evaluation
// applications (trained model + embedding table + access stats + held-out
// inference lists) and exposes memoized quality functions for the co-design
// sweeps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/codesign/sweep.h"
#include "src/ml/models.h"
#include "src/workloads/dataset.h"

namespace gpudpf {
namespace bench {

// Quality targets from Section 5.2: Acc-eco preserves the full-precision
// quality; Acc-relaxed tolerates <0.5% AUC (rec) / <5% perplexity (LM).
struct QualityTargets {
    double eco;
    double relaxed;
    bool higher_is_better;  // AUC: true; perplexity: false

    bool MeetsEco(double q) const {
        return higher_is_better ? q >= eco : q <= eco;
    }
    bool MeetsRelaxed(double q) const {
        return higher_is_better ? q >= relaxed : q <= relaxed;
    }
};

struct RecApp {
    std::string name;
    RecDataset dataset;
    AccessStats stats;
    std::unique_ptr<EmbeddingTable> emb;
    std::unique_ptr<MlpRanker> model;
    double clean_quality = 0.0;  // AUC with every lookup served
    // Cost accounting scale restoring the paper's true table size when the
    // dataset vocabulary was scaled down (CodesignEvaluator cost_scale).
    std::uint64_t cost_scale = 1;
    // Held-out inferences replayed through the planner (subsampled).
    std::vector<RecSample> eval_samples;
    std::vector<std::vector<std::uint64_t>> eval_wanted;

    std::size_t entry_bytes() const {
        return static_cast<std::size_t>(emb->dim()) * sizeof(float);
    }
    CodesignEvaluator::QualityFn MakeQualityFn() const;
    QualityTargets Targets() const {
        return {clean_quality - 0.0005, clean_quality - 0.005, true};
    }
};

struct LmApp {
    std::string name;
    LmDataset dataset;
    AccessStats stats;
    std::unique_ptr<EmbeddingTable> emb;
    std::unique_ptr<FeedforwardLm> model;
    double clean_quality = 0.0;  // perplexity with every lookup served
    std::uint64_t cost_scale = 1;  // see RecApp::cost_scale
    std::vector<LmSample> eval_samples;
    std::vector<std::vector<std::uint64_t>> eval_wanted;

    std::size_t entry_bytes() const {
        return static_cast<std::size_t>(emb->dim()) * sizeof(float);
    }
    CodesignEvaluator::QualityFn MakeQualityFn() const;
    QualityTargets Targets() const {
        return {clean_quality * 1.005, clean_quality * 1.05, false};
    }
};

// Builders train the models once; `eval_subsample` caps the number of
// held-out inferences replayed per sweep point.
RecApp BuildRecApp(const RecWorkloadSpec& spec, std::size_t eval_subsample,
                   int epochs = 3, float lr = 0.05f);
LmApp BuildLmApp(const LmWorkloadSpec& spec, std::size_t eval_subsample,
                 int epochs = 2, float lr = 0.1f);

// The paper's three applications at bench scale.
RecApp BuildMovieLensApp();
RecApp BuildTaobaoApp();
LmApp BuildWikiTextApp();

// Best point of a frontier under budgets; returns nullptr if none qualify.
struct BudgetFilter {
    double max_comm_bytes = 300e3;       // paper: <300 KB
    double max_latency_sec = 0.3;        // paper: <300 ms
    bool use_cpu_qps = false;            // rank by cpu_qps instead of gpu
};
const SweepPoint* BestPoint(const std::vector<SweepPoint>& frontier,
                            const QualityTargets& targets, bool relaxed,
                            const BudgetFilter& filter);

}  // namespace bench
}  // namespace gpudpf

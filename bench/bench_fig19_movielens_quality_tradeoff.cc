// Figure 19 — system throughput vs model quality (AUC) for the
// MovieLens-like recommendation model, batch-PIR vs co-design, two budgets.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

void PrintBudget(const std::vector<SweepPoint>& base,
                 const std::vector<SweepPoint>& co, double comm_budget,
                 double lat_budget) {
    std::printf("--- budget: comm=%.0fKB, lat=%.0fms ---\n",
                comm_budget / 1e3, lat_budget * 1e3);
    TablePrinter table({"scheme", "QPS (x1000)", "quality (AUC)",
                        "comm (KB)"});
    auto emit = [&](const char* name, const std::vector<SweepPoint>& pts) {
        for (const auto& p : pts) {
            if (p.comm_bytes > comm_budget) continue;
            if (p.gpu_latency_sec > lat_budget) continue;
            table.AddRow({name, TablePrinter::Num(p.gpu_qps / 1e3, 2),
                          TablePrinter::Num(p.quality, 4),
                          TablePrinter::Num(p.comm_bytes / 1e3, 1)});
        }
    };
    emit("batch-pir", base);
    emit("batch-pir w/ co-design", co);
    table.Print();
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("=== Figure 19: MovieLens throughput vs AUC ===\n\n");
    const RecApp app = BuildMovieLensApp();
    std::printf("clean AUC: %.4f\n\n", app.clean_quality);
    const auto quality_fn = app.MakeQualityFn();
    CodesignEvaluator evaluator(app.emb->vocab(), app.entry_bytes(),
                                &app.stats, app.eval_wanted, quality_fn,
                                PrfKind::kChacha20, 256, app.cost_scale);
    const std::vector<std::uint64_t> q_grid{2, 4, 8, 16, 32};
    const auto base = evaluator.BaselineFrontier(q_grid);
    const auto co = evaluator.CodesignFrontier(q_grid);

    PrintBudget(base, co, 100e3, 0.05);
    PrintBudget(base, co, 300e3, 0.20);
    std::printf(
        "Shape check vs paper: MovieLens' inputs are all sparse lookups "
        "(~72 per inference), so dropped queries directly hit AUC — "
        "co-design clearly dominates under the tight budget.\n");
    return 0;
}

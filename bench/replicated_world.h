// Shared deterministic world for the replicated serving bench and the
// standalone pir_node binary (tools/pir_node_main.cc).
//
// Every process that includes this builds the SAME service: same dataset
// spec and seed, same embedding init, same ServiceConfig. That is the
// whole trick behind multi-process benching — identically-configured
// replicas build bit-identical tables, so any node can answer any
// request, the hello geometry handshake passes, and a client process can
// verify networked results against its own in-process reference.
// Changing anything here changes the geometry: rebuild every binary, or
// the nodes will (correctly) refuse the handshake.
#pragma once

#include <cstdint>
#include <memory>

#include "src/common/rng.h"
#include "src/core/service.h"
#include "src/ml/embedding.h"
#include "src/workloads/dataset.h"

namespace gpudpf {
namespace bench {

constexpr std::uint64_t kReplicatedVocab = 2'048;

inline ServiceConfig ReplicatedBenchConfig() {
    ServiceConfig config;
    config.codesign.hot_size = 256;
    config.codesign.q_hot = 16;
    config.codesign.q_full = 8;
    config.max_inflight_requests = 256;
    config.batcher_linger_us = 200;
    config.adaptive_linger = true;
    config.linger_ewma_half_life_us = 1'000;
    return config;
}

struct ReplicatedWorld {
    ReplicatedWorld() {
        RecWorkloadSpec spec;
        spec.name = "replicated-bench";
        spec.vocab = kReplicatedVocab;
        spec.num_train = 4'000;
        spec.num_test = 200;
        spec.min_history = 4;
        spec.max_history = 10;
        spec.num_clusters = 12;
        spec.seed = 5;
        const RecDataset dataset = GenerateRecDataset(spec);
        stats = ComputeRecStats(dataset, 4);
        emb = std::make_unique<EmbeddingTable>(kReplicatedVocab, spec.dim);
        Rng rng(9);
        emb->InitRandom(rng, 0.1f);
    }

    std::unique_ptr<PrivateEmbeddingService> MakeService() const {
        return std::make_unique<PrivateEmbeddingService>(
            *emb, stats, ReplicatedBenchConfig());
    }

    // Router/client-side twin: same geometry and client machinery, but no
    // physical tables (ServiceConfig::planning_only) — a routing process
    // never scans a table, so it skips the dominant construction cost.
    std::unique_ptr<PrivateEmbeddingService> MakePlanningService() const {
        ServiceConfig config = ReplicatedBenchConfig();
        config.planning_only = true;
        return std::make_unique<PrivateEmbeddingService>(*emb, stats, config);
    }

    AccessStats stats;
    std::unique_ptr<EmbeddingTable> emb;
};

// The deterministic per-(client, lookup) key batch every process agrees
// on; mixed sizes so batching sees varied shapes.
inline std::vector<std::uint64_t> ReplicatedWantedFor(std::size_t client,
                                                      std::size_t lookup) {
    const std::size_t n = 3 + (client + lookup) % 4;
    std::vector<std::uint64_t> wanted(n);
    for (std::size_t i = 0; i < n; ++i) {
        wanted[i] = (client * 131 + lookup * 17 + i * 263) % kReplicatedVocab;
    }
    return wanted;
}

}  // namespace bench
}  // namespace gpudpf

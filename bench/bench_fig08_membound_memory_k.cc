// Figure 8 — (a) memory usage of memory-bounded tree traversal vs
// level-by-level across table sizes; (b) GPU utilization vs the chunk
// parameter K (the paper settles on K=128 for the V100).
#include <cstdio>

#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/gpusim/cost_model.h"
#include "src/kernels/strategy.h"

using namespace gpudpf;

int main() {
    std::printf("=== Figure 8a: memory usage (batch 512, K=128) ===\n\n");
    TablePrinter mem({"L", "level-by-level", "membound-tree", "reduction"});
    for (int n = 14; n <= 24; n += 2) {
        StrategyConfig config;
        config.log_domain = n;
        config.num_entries = std::uint64_t{1} << n;
        config.entry_bytes = 256;
        config.batch = 512;
        config.chunk_k = 128;
        config.kind = StrategyKind::kLevelByLevel;
        const auto level = MakeStrategy(config)->Analyze();
        config.kind = StrategyKind::kMemBoundTree;
        const auto membound = MakeStrategy(config)->Analyze();
        mem.AddRow({"2^" + std::to_string(n),
                    FormatBytes(static_cast<double>(level.workspace_bytes)),
                    FormatBytes(static_cast<double>(membound.workspace_bytes)),
                    TablePrinter::Num(
                        static_cast<double>(level.workspace_bytes) /
                            static_cast<double>(membound.workspace_bytes),
                        0) + "x"});
    }
    mem.Print();

    std::printf("\n=== Figure 8b: GPU utilization vs K (L=2^20, batch 512) ===\n\n");
    const GpuCostModel model;
    TablePrinter util({"K", "utilization", "workspace", "modeled QPS"});
    for (std::uint32_t k = 8; k <= 1024; k *= 2) {
        StrategyConfig config;
        config.kind = StrategyKind::kMemBoundTree;
        config.log_domain = 20;
        config.num_entries = 1 << 20;
        config.entry_bytes = 256;
        config.prf = PrfKind::kAes128;
        config.batch = 512;
        config.chunk_k = k;
        config.block_dim = 1;
        const auto report = MakeStrategy(config)->Analyze();
        const auto est = model.Estimate(report);
        util.AddRow({std::to_string(k),
                     TablePrinter::Num(est.utilization * 100, 1) + "%",
                     FormatBytes(static_cast<double>(report.workspace_bytes)),
                     TablePrinter::Num(est.throughput_qps, 0)});
    }
    util.Print();
    std::printf(
        "\nShape check vs paper: membound memory grows ~log(L) vs linear "
        "for level-by-level; utilization rises with K and saturates around "
        "K=128 (the paper's chosen value), while memory keeps growing — "
        "K=128 balances both.\n");
    return 0;
}

// Sequential vs sharded/batched server answer throughput, across table
// storage layouts.
//
//   build/bench/bench_sharded_throughput [log_entries] [entry_bytes] [batch]
//                                        [iters] [--json=path]
//
// Answers a batch of PIR queries against one table several ways — the
// sequential reference loop, per-query sharded Answer, and the batched
// BatchAnswer path on the row-major table, plus BatchAnswer against a
// tiled-layout copy with pinned shard placement — at several thread
// counts, and reports queries/sec plus speedup over the sequential
// baseline. A second section pits the CPU kernel strategies (scalar,
// simd_prg, multiquery_tile) against each other on one thread with the
// AES-128 MMO PRG, per layout, reporting each kernel's speedup over the
// scalar reference. A third section isolates the u128 mat-vec accumulator
// (src/kernels/accumulate.h): each supported ISA walks the tiled table
// with precomputed shares, reporting ns/row and speedup over the scalar
// accumulator as accum_* JSON rows. Both tables hold identical logical
// rows and the bench fails (exit 1) if any batched/kernel/accumulator
// results differ from the reference. Speedup of the sharded rows tracks
// the physical core count:
// on a 1-core host they only measure the engine's overhead; run on >= 8
// cores to see the tiled+pinned layout pull ahead.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/cpuid.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/kernels/accumulate.h"
#include "src/kernels/cpu_kernel.h"
#include "src/pir/protocol.h"
#include "src/pir/table.h"
#include "src/pir/table_layout.h"

using namespace gpudpf;

namespace {

double MeasureSeconds(int iters, const std::function<void()>& body) {
    body();  // warm-up
    Timer timer;
    for (int i = 0; i < iters; ++i) body();
    return timer.ElapsedSeconds() / iters;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = bench::JsonPathFromArgs(argc, argv);
    const std::vector<const char*> positional =
        bench::PositionalArgs(argc, argv);
    const std::size_t nargs = positional.size();
    const int log_entries = nargs > 0 ? std::atoi(positional[0]) : 14;
    const std::size_t entry_bytes =
        nargs > 1 ? static_cast<std::size_t>(std::atoll(positional[1])) : 256;
    const std::size_t batch =
        nargs > 2 ? static_cast<std::size_t>(std::atoll(positional[2])) : 8;
    const int iters = nargs > 3 ? std::atoi(positional[3]) : 3;
    if (log_entries < 1 || log_entries > 30 || entry_bytes == 0 ||
        batch == 0 || iters < 1) {
        std::fprintf(stderr,
                     "usage: %s [log_entries 1..30] [entry_bytes >= 1] "
                     "[batch >= 1] [iters >= 1]\n",
                     argv[0]);
        return 2;
    }

    const std::uint64_t n = std::uint64_t{1} << log_entries;
    std::printf("== sharded answer throughput ==\n");
    std::printf("table: %llu entries x %zu B (%.1f MiB), batch=%zu, "
                "host cores=%u\n",
                static_cast<unsigned long long>(n), entry_bytes,
                static_cast<double>(n) * entry_bytes / (1024.0 * 1024.0),
                batch, std::thread::hardware_concurrency());

    // Identical logical rows in both layouts (same fill seed).
    Rng rng_row(1);
    Rng rng_tiled(1);
    PirTable table(n, entry_bytes, TableLayout::kRowMajor);
    PirTable tiled_table(n, entry_bytes, TableLayout::kTiled);
    table.FillRandom(rng_row);
    tiled_table.FillRandom(rng_tiled);
    std::printf("tiled layout: %llu rows/tile, %.1f MiB allocated\n",
                static_cast<unsigned long long>(tiled_table.rows_per_tile()),
                tiled_table.size_bytes() / (1024.0 * 1024.0));
    PirClient client(log_entries, PrfKind::kChacha20, /*seed=*/2);

    std::vector<std::vector<std::uint8_t>> keys;
    keys.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        keys.push_back(client.Query((i * 7919) % n).key_for_server0);
    }

    // Sequential reference baseline: one query at a time, no pool.
    PirServer sequential(&table);
    const double seq_sec = MeasureSeconds(iters, [&] {
        for (const auto& k : keys) sequential.Answer(k.data(), k.size());
    });
    const double seq_qps = batch / seq_sec;
    std::vector<bench::JsonResult> json;
    json.push_back({"sequential", seq_qps});
    std::printf("\n%-30s %12s %12s %9s\n", "config", "batch ms", "queries/s",
                "speedup");
    std::printf("%-30s %12.2f %12.1f %9s\n", "sequential", seq_sec * 1e3,
                seq_qps, "1.00x");

    bool responses_identical = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
        // Core-pinned workers, matching how a service pool runs under
        // ShardPlacement::kPinned (shared by every config at this thread
        // count, so the comparison stays fair).
        ThreadPool pool(threads, /*pin_to_cores=*/true);
        // 2 shards per thread keeps every worker busy through the ragged
        // tail of the row ranges.
        const std::size_t shards = 2 * threads;
        PirServer server(&table, ShardingOptions{shards, &pool});
        // The tiled configuration pairs the cache-aware layout with pinned
        // shard placement: shard s always runs on worker s % threads, so
        // repeated batches stream each tile from the same core's cache.
        PirServer tiled_server(
            &tiled_table,
            ShardingOptions{shards, &pool, ShardPlacement::kPinned});

        const double shard_sec = MeasureSeconds(iters, [&] {
            for (const auto& k : keys) server.Answer(k.data(), k.size());
        });
        const double batch_sec = MeasureSeconds(iters, [&] {
            server.BatchAnswer(keys);
        });
        const double tiled_sec = MeasureSeconds(iters, [&] {
            tiled_server.BatchAnswer(keys);
        });
        if (tiled_server.BatchAnswer(keys) != server.BatchAnswer(keys)) {
            responses_identical = false;
            std::fprintf(stderr, "MISMATCH: tiled responses at t=%zu\n",
                         threads);
        }

        char label[64];
        std::snprintf(label, sizeof(label), "sharded     t=%zu shards=%zu",
                      threads, shards);
        std::printf("%-30s %12.2f %12.1f %8.2fx\n", label, shard_sec * 1e3,
                    batch / shard_sec, seq_sec / shard_sec);
        std::snprintf(label, sizeof(label), "batched     t=%zu shards=%zu",
                      threads, shards);
        std::printf("%-30s %12.2f %12.1f %8.2fx\n", label, batch_sec * 1e3,
                    batch / batch_sec, seq_sec / batch_sec);
        std::snprintf(label, sizeof(label), "tiled+pin   t=%zu shards=%zu",
                      threads, shards);
        std::printf("%-30s %12.2f %12.1f %8.2fx  (%.2fx vs row-major)\n",
                    label, tiled_sec * 1e3, batch / tiled_sec,
                    seq_sec / tiled_sec, batch_sec / tiled_sec);
        json.push_back({"sharded_t" + std::to_string(threads),
                        batch / shard_sec});
        json.push_back({"batched_t" + std::to_string(threads),
                        batch / batch_sec});
        json.push_back({"tiled_t" + std::to_string(threads),
                        batch / tiled_sec});
    }
    std::printf("\ntiled responses bit-identical to row-major: %s\n",
                responses_identical ? "YES" : "NO");

    // --- CPU kernel comparison: one thread, AES-128 MMO PRG ----------------
    // Isolates the kernel strategies (src/kernels/cpu_kernel.h) from pool
    // scaling: every row runs the same batch on a single worker, against
    // the same logical rows, so the per-kernel speedups measure the
    // AES-NI-batched PRG and the multi-query tile walk alone. Queries use
    // the AES-128 MMO PRG — the PRF whose expansion the SIMD path
    // accelerates; responses are gated bit-identical to the scalar
    // reference on the same layout.
    std::printf("\n== cpu kernels (1 thread, aes128 prg, batch=%zu) ==\n",
                batch);
    std::printf("cpu features: %s\n", CpuFeatureSummary().c_str());
    PirClient aes_client(log_entries, PrfKind::kAes128, /*seed=*/3);
    std::vector<std::vector<std::uint8_t>> aes_keys;
    aes_keys.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        aes_keys.push_back(aes_client.Query((i * 7919) % n).key_for_server0);
    }
    ThreadPool single(1);
    const PirTable* layout_tables[2] = {&table, &tiled_table};
    const char* layout_names[2] = {"row_major", "tiled"};
    std::vector<std::vector<PirResponse>> scalar_ref(2);
    double scalar_qps[2] = {0.0, 0.0};
    std::printf("%-30s %12s %12s %9s\n", "kernel", "batch ms", "queries/s",
                "vs scalar");
    for (const CpuKernelKind kernel : AllCpuKernelKinds()) {
        for (int l = 0; l < 2; ++l) {
            PirServer server(layout_tables[l],
                             ShardingOptions{1, &single,
                                             ShardPlacement::kDynamic,
                                             kernel});
            const double sec = MeasureSeconds(iters, [&] {
                server.BatchAnswer(aes_keys);
            });
            const double qps = batch / sec;
            const auto responses = server.BatchAnswer(aes_keys);
            if (kernel == CpuKernelKind::kScalar) {
                scalar_ref[l] = responses;
                scalar_qps[l] = qps;
            } else if (responses != scalar_ref[l]) {
                responses_identical = false;
                std::fprintf(stderr, "MISMATCH: kernel %s on %s\n",
                             CpuKernelKindName(kernel), layout_names[l]);
            }
            const double speedup = scalar_qps[l] > 0 ? qps / scalar_qps[l]
                                                     : 0.0;
            char label[64];
            std::snprintf(label, sizeof(label), "%-16s %s",
                          CpuKernelKindName(kernel), layout_names[l]);
            std::printf("%-30s %12.2f %12.1f %8.2fx\n", label, sec * 1e3,
                        qps, speedup);
            bench::JsonResult row;
            row.name = std::string("kernel_") + CpuKernelKindName(kernel) +
                       "_" + layout_names[l];
            row.qps = qps;
            row.has_kernel = true;
            row.kernel = CpuKernelKindName(kernel);
            row.layout = layout_names[l];
            row.speedup_vs_scalar = speedup;
            json.push_back(std::move(row));
        }
    }
    std::printf("kernel responses bit-identical to scalar reference: %s\n",
                responses_identical ? "YES" : "NO");

    // --- accumulator ISAs: fused tiled table walk, one thread --------------
    // Isolates the mat-vec accumulator (src/kernels/accumulate.h) from DPF
    // expansion entirely: shares are precomputed, and each ISA's
    // AccumulateFn walks tiles of the tiled table. The walk is capped to
    // an L2-resident working set because that is the regime the fused
    // multi-query kernel creates — a tile is pulled into L2 once and
    // re-walked per query — so the accumulator's compute, not DRAM
    // bandwidth, is the bound being measured (a full-table cold walk
    // levels every ISA at the memory floor). Every vector path is gated
    // bit-identical to the scalar reference (exit 1 on mismatch).
    std::printf("\n== accumulator isa (tiled walk, w=%zu words, 1 thread) "
                "==\n",
                tiled_table.words_per_entry());
    const std::size_t w = tiled_table.words_per_entry();
    const std::uint64_t tile_rows = tiled_table.rows_per_tile();
    const std::uint64_t accum_rows = std::min<std::uint64_t>(
        n, (std::uint64_t{1} << 20) / (w * sizeof(u128)));
    std::vector<u128> shares(accum_rows);
    Rng share_rng(17);
    for (std::uint64_t j = 0; j < accum_rows; ++j) {
        shares[j] = share_rng.Next128();
    }
    const auto walk = [&](AccumulateFn fn, u128* resp) {
        for (std::uint64_t t = 0; t < accum_rows; t += tile_rows) {
            const std::uint64_t seg =
                std::min<std::uint64_t>(tile_rows, accum_rows - t);
            fn(tiled_table.Entry(t), w, shares.data() + t, seg, resp);
        }
    };
    std::vector<u128> scalar_accum(w, 0);
    walk(GetAccumulateFn(AccumulateIsa::kScalar), scalar_accum.data());
    double scalar_rows_per_sec = 0.0;
    std::printf("%-30s %12s %12s %9s\n", "isa", "ns/row", "rows/s",
                "vs scalar");
    for (const AccumulateIsa isa : AllAccumulateIsas()) {
        if (!AccumulateIsaSupported(isa)) continue;
        AccumulateFn fn = GetAccumulateFn(isa);
        std::vector<u128> accum(w, 0);
        walk(fn, accum.data());
        if (accum != scalar_accum) {
            responses_identical = false;
            std::fprintf(stderr, "MISMATCH: accumulator %s\n",
                         AccumulateIsaName(isa));
        }
        std::vector<u128> sink(w, 0);
        const double sec = MeasureSeconds(iters, [&] {
            walk(fn, sink.data());
        });
        const double rows_per_sec = static_cast<double>(accum_rows) / sec;
        if (isa == AccumulateIsa::kScalar) {
            scalar_rows_per_sec = rows_per_sec;
        }
        const double speedup = scalar_rows_per_sec > 0
                                   ? rows_per_sec / scalar_rows_per_sec
                                   : 0.0;
        std::printf("%-30s %12.3f %12.3g %8.2fx\n", AccumulateIsaName(isa),
                    sec / accum_rows * 1e9, rows_per_sec, speedup);
        bench::JsonResult row;
        row.name = std::string("accum_") + AccumulateIsaName(isa);
        row.qps = rows_per_sec;
        row.has_isa = true;
        row.isa = AccumulateIsaName(isa);
        row.speedup_vs_scalar = speedup;
        json.push_back(std::move(row));
    }
    std::printf("accumulator paths bit-identical to scalar reference: %s\n",
                responses_identical ? "YES" : "NO");
    // The bench name carries the table configuration: several CI runs of
    // this binary (main + tiled smoke) land in one results directory, and
    // the regression checker keys on (bench, row) — identical names would
    // silently overwrite each other.
    char bench_name[64];
    std::snprintf(bench_name, sizeof(bench_name),
                  "bench_sharded_throughput_%dx%zu", log_entries,
                  entry_bytes);
    if (json_path != nullptr &&
        !bench::WriteBenchJson(json_path, bench_name, json)) {
        return 2;
    }
    return responses_identical ? 0 : 1;
}

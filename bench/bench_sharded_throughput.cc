// Sequential vs sharded/batched server answer throughput.
//
//   build/bench/bench_sharded_throughput [log_entries] [entry_bytes] [batch]
//                                        [iters] [--json=path]
//
// Answers a batch of PIR queries against one table three ways — the
// sequential reference loop, per-query sharded Answer, and the batched
// BatchAnswer path — at several thread counts, and reports queries/sec plus
// speedup over the sequential baseline. Speedup tracks the physical core
// count: on a 1-core host the sharded rows only measure the engine's
// overhead; run on >= 8 cores to reproduce the >2x-at-8-threads result.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/pir/protocol.h"
#include "src/pir/table.h"

using namespace gpudpf;

namespace {

double MeasureSeconds(int iters, const std::function<void()>& body) {
    body();  // warm-up
    Timer timer;
    for (int i = 0; i < iters; ++i) body();
    return timer.ElapsedSeconds() / iters;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = bench::JsonPathFromArgs(argc, argv);
    const std::vector<const char*> positional =
        bench::PositionalArgs(argc, argv);
    const std::size_t nargs = positional.size();
    const int log_entries = nargs > 0 ? std::atoi(positional[0]) : 14;
    const std::size_t entry_bytes =
        nargs > 1 ? static_cast<std::size_t>(std::atoll(positional[1])) : 256;
    const std::size_t batch =
        nargs > 2 ? static_cast<std::size_t>(std::atoll(positional[2])) : 8;
    const int iters = nargs > 3 ? std::atoi(positional[3]) : 3;
    if (log_entries < 1 || log_entries > 30 || entry_bytes == 0 ||
        batch == 0 || iters < 1) {
        std::fprintf(stderr,
                     "usage: %s [log_entries 1..30] [entry_bytes >= 1] "
                     "[batch >= 1] [iters >= 1]\n",
                     argv[0]);
        return 2;
    }

    const std::uint64_t n = std::uint64_t{1} << log_entries;
    std::printf("== sharded answer throughput ==\n");
    std::printf("table: %llu entries x %zu B (%.1f MiB), batch=%zu, "
                "host cores=%u\n",
                static_cast<unsigned long long>(n), entry_bytes,
                static_cast<double>(n) * entry_bytes / (1024.0 * 1024.0),
                batch, std::thread::hardware_concurrency());

    Rng rng(1);
    PirTable table(n, entry_bytes);
    table.FillRandom(rng);
    PirClient client(log_entries, PrfKind::kChacha20, /*seed=*/2);

    std::vector<std::vector<std::uint8_t>> keys;
    keys.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        keys.push_back(client.Query((i * 7919) % n).key_for_server0);
    }

    // Sequential reference baseline: one query at a time, no pool.
    PirServer sequential(&table);
    const double seq_sec = MeasureSeconds(iters, [&] {
        for (const auto& k : keys) sequential.Answer(k.data(), k.size());
    });
    const double seq_qps = batch / seq_sec;
    std::vector<bench::JsonResult> json;
    json.push_back({"sequential", seq_qps});
    std::printf("\n%-28s %12s %12s %9s\n", "config", "batch ms", "queries/s",
                "speedup");
    std::printf("%-28s %12.2f %12.1f %9s\n", "sequential", seq_sec * 1e3,
                seq_qps, "1.00x");

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
        ThreadPool pool(threads);
        // 2 shards per thread keeps every worker busy through the ragged
        // tail of the row ranges.
        PirServer server(&table, ShardingOptions{2 * threads, &pool});
        const double shard_sec = MeasureSeconds(iters, [&] {
            for (const auto& k : keys) server.Answer(k.data(), k.size());
        });
        const double batch_sec = MeasureSeconds(iters, [&] {
            server.BatchAnswer(keys);
        });
        char label[64];
        std::snprintf(label, sizeof(label), "sharded   t=%zu shards=%zu",
                      threads, 2 * threads);
        std::printf("%-28s %12.2f %12.1f %8.2fx\n", label, shard_sec * 1e3,
                    batch / shard_sec, seq_sec / shard_sec);
        std::snprintf(label, sizeof(label), "batched   t=%zu shards=%zu",
                      threads, 2 * threads);
        std::printf("%-28s %12.2f %12.1f %8.2fx\n", label, batch_sec * 1e3,
                    batch / batch_sec, seq_sec / batch_sec);
        json.push_back({"sharded_t" + std::to_string(threads),
                        batch / shard_sec});
        json.push_back({"batched_t" + std::to_string(threads),
                        batch / batch_sec});
    }
    if (json_path != nullptr &&
        !bench::WriteBenchJson(json_path, "bench_sharded_throughput", json)) {
        return 2;
    }
    return 0;
}

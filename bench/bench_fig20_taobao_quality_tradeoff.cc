// Figure 20 — system throughput vs model quality (AUC) for the Taobao-like
// recommendation model, batch-PIR vs co-design, two budgets. The paper's
// takeaway: Taobao's sparse features are a small fraction of its inputs
// (2.68 lookups/inference), so co-design's quality gains are modest.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

void PrintBudget(const std::vector<SweepPoint>& base,
                 const std::vector<SweepPoint>& co, double comm_budget,
                 double lat_budget) {
    std::printf("--- budget: comm=%.0fKB, lat=%.0fms ---\n",
                comm_budget / 1e3, lat_budget * 1e3);
    TablePrinter table({"scheme", "QPS (x1000)", "quality (AUC)",
                        "retrieval rate"});
    auto emit = [&](const char* name, const std::vector<SweepPoint>& pts) {
        for (const auto& p : pts) {
            if (p.comm_bytes > comm_budget) continue;
            if (p.gpu_latency_sec > lat_budget) continue;
            table.AddRow({name, TablePrinter::Num(p.gpu_qps / 1e3, 2),
                          TablePrinter::Num(p.quality, 5),
                          TablePrinter::Num(p.retrieved_fraction * 100, 1) +
                              "%"});
        }
    };
    emit("batch-pir", base);
    emit("batch-pir w/ co-design", co);
    table.Print();
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("=== Figure 20: Taobao throughput vs AUC ===\n\n");
    const RecApp app = BuildTaobaoApp();
    std::printf("clean AUC: %.4f\n\n", app.clean_quality);
    const auto quality_fn = app.MakeQualityFn();
    CodesignEvaluator evaluator(app.emb->vocab(), app.entry_bytes(),
                                &app.stats, app.eval_wanted, quality_fn,
                                PrfKind::kChacha20, 256, app.cost_scale);
    const std::vector<std::uint64_t> q_grid{1, 2, 4};
    const auto base = evaluator.BaselineFrontier(q_grid);
    const auto co = evaluator.CodesignFrontier(q_grid);

    PrintBudget(base, co, 100e3, 0.05);
    PrintBudget(base, co, 300e3, 0.20);
    std::printf(
        "Shape check vs paper: AUC differences between schemes are in the "
        "4th decimal (few lookups per inference, weak sparse-feature "
        "signal), and absolute QPS is far higher than the other "
        "applications.\n");
    return 0;
}

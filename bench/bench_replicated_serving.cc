// Replicated networked serving: QPS scaling across replicas and failover.
//
//   build/bench/bench_replicated_serving [client_threads] [lookups_per_client]
//                                        [--json=path]
//                                        [--connect=host:port,host:port,...]
//
// Local mode stands up loopback PirServerNode replicas (each over its own
// identically-configured PrivateEmbeddingService) behind a ReplicaRouter
// and drives them from client_threads concurrent clients:
//
//   replicated_rN   steady-state QPS at 1, 2, and 4 replicas — the
//                   throughput column is the scaling story: every replica
//                   adds an independent batcher + answer engine.
//   killone_r3      3 replicas; one is Abort()ed (connections die
//                   mid-stream, listener closes) once ~30% of the load has
//                   completed. Every surviving request must still
//                   complete — the rerouted-request and failover counters
//                   land in the JSON next to the QPS.
//
// --connect mode drives externally-started pir_node processes instead
// (scripts/run_replicated_smoke.sh starts three, then SIGKILLs one
// mid-run); the bench builds the same world locally for planning and
// reference results.
//
// Every networked result is compared against an in-process reference
// lookup with the same client state: ANY byte difference — embeddings,
// retrieved flags, or the modeled upload/download byte counts — fails the
// bench (exit 1), as does any request that completes with an error.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/replicated_world.h"
#include "src/common/timer.h"
#include "src/core/service.h"
#include "src/net/replica_router.h"
#include "src/net/server_node.h"

using namespace gpudpf;

namespace {

using LookupResult = PrivateEmbeddingService::LookupResult;

bool SameResults(const LookupResult& a, const LookupResult& b) {
    return a.retrieved == b.retrieved && a.embeddings == b.embeddings &&
           a.upload_bytes == b.upload_bytes &&
           a.download_bytes == b.download_bytes;
}

// One routed run: client_threads threads, each with its own Client, each
// issuing its deterministic lookup stream through the router.
struct RoutedRun {
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::size_t failures = 0;   // requests that completed with an error
    std::size_t mismatches = 0; // results that differed from the reference
    std::uint64_t rerouted = 0; // lookups that needed the failover retry
    net::ReplicaRouter::Stats router_stats;
    std::size_t healthy_at_end = 0;
    std::vector<std::uint64_t> per_replica;
};

RoutedRun RunRouted(
    const bench::ReplicatedWorld& world,
    const std::vector<net::ReplicaRouter::Endpoint>& endpoints,
    std::size_t client_threads, std::size_t lookups_per_client,
    const std::vector<std::vector<LookupResult>>& ref,
    net::PirServerNode* abort_node, double abort_after_frac,
    const char* ready_file = nullptr) {
    // Planning-only: the router reconstructs from wire shares and never
    // scans a table, so its service twin skips the physical table build.
    auto planning = world.MakePlanningService();
    std::vector<std::unique_ptr<PrivateEmbeddingService::Client>> clients;
    for (std::size_t c = 0; c < client_threads; ++c) {
        clients.push_back(planning->MakeClient());
    }
    net::ReplicaRouter::Options options;
    options.health_period_ms = 50;
    net::ReplicaRouter router(planning.get(), endpoints, options);

    if (ready_file != nullptr) {
        // Signal an external driver (the smoke script's kill-one scenario)
        // that the routed load is about to start — its SIGKILL lands
        // mid-run instead of racing the world build.
        if (std::FILE* f = std::fopen(ready_file, "w")) std::fclose(f);
    }

    RoutedRun run;
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<std::size_t> mismatches{0};
    std::atomic<std::uint64_t> rerouted{0};
    std::vector<std::vector<double>> latency_ms(client_threads);

    Timer wall;
    {
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < client_threads; ++c) {
            threads.emplace_back([&, c] {
                for (std::size_t l = 0; l < lookups_per_client; ++l) {
                    Timer request_timer;
                    try {
                        const auto outcome = router.Lookup(
                            clients[c].get(), bench::ReplicatedWantedFor(c, l));
                        latency_ms[c].push_back(request_timer.ElapsedMillis());
                        if (outcome.rerouted) ++rerouted;
                        if (!SameResults(outcome.result, ref[c][l])) {
                            ++mismatches;
                            std::fprintf(stderr,
                                         "MISMATCH: client %zu lookup %zu "
                                         "(replica %zu)\n",
                                         c, l, outcome.replica);
                        }
                    } catch (const std::exception& e) {
                        ++failures;
                        std::fprintf(stderr,
                                     "FAILED: client %zu lookup %zu: %s\n", c,
                                     l, e.what());
                    }
                    ++done;
                }
            });
        }
        if (abort_node != nullptr) {
            const std::size_t trigger = static_cast<std::size_t>(
                abort_after_frac * client_threads * lookups_per_client);
            while (done.load() < trigger) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            abort_node->Abort();
        }
        for (auto& t : threads) t.join();
    }
    const double sec = wall.ElapsedSeconds();

    std::vector<double> all_ms;
    for (auto& v : latency_ms) {
        all_ms.insert(all_ms.end(), v.begin(), v.end());
    }
    std::sort(all_ms.begin(), all_ms.end());
    run.qps = static_cast<double>(client_threads * lookups_per_client) / sec;
    run.p50_ms = bench::PercentileSorted(all_ms, 0.50);
    run.p99_ms = bench::PercentileSorted(all_ms, 0.99);
    run.failures = failures.load();
    run.mismatches = mismatches.load();
    run.rerouted = rerouted.load();
    run.router_stats = router.stats();
    run.healthy_at_end = router.healthy_count();
    run.per_replica = router.per_replica_answered();
    return run;
}

bench::JsonResult NetRow(const std::string& name, const RoutedRun& run,
                         std::size_t replicas) {
    bench::JsonResult row;
    row.name = name;
    row.qps = run.qps;
    row.has_latency = true;
    row.p50_ms = run.p50_ms;
    row.p99_ms = run.p99_ms;
    row.has_net = true;
    row.replicas = static_cast<double>(replicas);
    row.failovers = static_cast<double>(run.router_stats.failovers);
    row.transport_errors =
        static_cast<double>(run.router_stats.transport_errors);
    row.healthy_replicas = static_cast<double>(run.healthy_at_end);
    return row;
}

void PrintRun(const char* name, const RoutedRun& run) {
    std::printf("%-14s %10.1f q/s   p50 %6.2f ms   p99 %6.2f ms   "
                "rerouted %llu   healthy %zu/",
                name, run.qps, run.p50_ms, run.p99_ms,
                static_cast<unsigned long long>(run.rerouted),
                run.healthy_at_end);
    std::printf("%zu   answered [", run.per_replica.size());
    for (std::size_t i = 0; i < run.per_replica.size(); ++i) {
        std::printf("%s%llu", i == 0 ? "" : " ",
                    static_cast<unsigned long long>(run.per_replica[i]));
    }
    std::printf("]\n");
}

std::vector<net::ReplicaRouter::Endpoint> ParseConnect(const char* arg) {
    std::vector<net::ReplicaRouter::Endpoint> endpoints;
    std::string list = arg;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const std::string item = list.substr(start, comma - start);
        const std::size_t colon = item.rfind(':');
        if (colon != std::string::npos) {
            endpoints.push_back(
                {item.substr(0, colon),
                 static_cast<std::uint16_t>(
                     std::atoi(item.c_str() + colon + 1))});
        }
        start = comma + 1;
    }
    return endpoints;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = bench::JsonPathFromArgs(argc, argv);
    const char* connect = nullptr;
    const char* ready_file = nullptr;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--connect=", 10) == 0) {
            connect = argv[i] + 10;
        } else if (std::strncmp(argv[i], "--ready-file=", 13) == 0) {
            ready_file = argv[i] + 13;
        } else if (std::strncmp(argv[i], "--json=", 7) != 0) {
            positional.push_back(argv[i]);
        }
    }
    const long long threads_arg =
        positional.size() > 0 ? std::atoll(positional[0]) : 6;
    const long long lookups_arg =
        positional.size() > 1 ? std::atoll(positional[1]) : 20;
    if (threads_arg < 1 || threads_arg > 256 || lookups_arg < 1 ||
        lookups_arg > 100'000) {
        std::fprintf(stderr,
                     "usage: %s [client_threads 1..256] "
                     "[lookups_per_client 1..100000] [--json=path] "
                     "[--connect=host:port,...]\n",
                     argv[0]);
        return 2;
    }
    const std::size_t client_threads = static_cast<std::size_t>(threads_arg);
    const std::size_t lookups_per_client =
        static_cast<std::size_t>(lookups_arg);

    std::printf("== replicated serving: QPS scaling and failover ==\n");
    std::printf("vocab=%llu, %zu client threads, %zu lookups/client, "
                "host cores=%u\n",
                static_cast<unsigned long long>(bench::kReplicatedVocab),
                client_threads, lookups_per_client,
                std::thread::hardware_concurrency());

    bench::ReplicatedWorld world;

    // In-process reference: a service of the same config, clients created
    // in the same order as every routed run's, each stream serialized.
    // Networked results must match these byte for byte.
    auto ref_service = world.MakeService();
    std::vector<std::unique_ptr<PrivateEmbeddingService::Client>> ref_clients;
    for (std::size_t c = 0; c < client_threads; ++c) {
        ref_clients.push_back(ref_service->MakeClient());
    }
    std::vector<std::vector<LookupResult>> ref(client_threads);
    Timer ref_timer;
    for (std::size_t c = 0; c < client_threads; ++c) {
        for (std::size_t l = 0; l < lookups_per_client; ++l) {
            ref[c].push_back(
                ref_clients[c]->Lookup(bench::ReplicatedWantedFor(c, l)));
        }
    }
    std::printf("in-process serialized reference: %.1f q/s\n\n",
                client_threads * lookups_per_client /
                    ref_timer.ElapsedSeconds());

    std::vector<bench::JsonResult> json;
    std::size_t failures = 0;
    std::size_t mismatches = 0;
    bool killone_rerouted_ok = true;
    bool scaling_ok = true;

    if (connect != nullptr) {
        // Externally-started nodes (the CI smoke script); one steady run.
        const auto endpoints = ParseConnect(connect);
        if (endpoints.empty()) {
            std::fprintf(stderr, "bad --connect list: %s\n", connect);
            return 2;
        }
        const RoutedRun run =
            RunRouted(world, endpoints, client_threads, lookups_per_client,
                      ref, nullptr, 0.0, ready_file);
        PrintRun("connect", run);
        failures += run.failures;
        mismatches += run.mismatches;
        json.push_back(NetRow("connect_r" + std::to_string(endpoints.size()),
                              run, endpoints.size()));
    } else {
        // QPS scaling: 1 -> 2 -> 4 loopback replicas.
        std::vector<double> scaling_qps;
        for (const std::size_t replicas : {1u, 2u, 4u}) {
            std::vector<std::unique_ptr<PrivateEmbeddingService>> services;
            std::vector<std::unique_ptr<net::PirServerNode>> nodes;
            std::vector<net::ReplicaRouter::Endpoint> endpoints;
            for (std::size_t i = 0; i < replicas; ++i) {
                services.push_back(world.MakeService());
                nodes.push_back(std::make_unique<net::PirServerNode>(
                    services.back().get(), net::PirServerNode::Options{}));
                endpoints.push_back({"127.0.0.1", nodes.back()->port()});
            }
            const RoutedRun run =
                RunRouted(world, endpoints, client_threads,
                          lookups_per_client, ref, nullptr, 0.0);
            const std::string name = "replicated_r" + std::to_string(replicas);
            PrintRun(name.c_str(), run);
            failures += run.failures;
            mismatches += run.mismatches;
            scaling_qps.push_back(run.qps);
            json.push_back(NetRow(name, run, replicas));
        }
        if (scaling_qps.size() == 3 && scaling_qps[2] <= scaling_qps[0]) {
            // Replica scaling needs concurrency to show up at all: on a
            // multi-core host a flat 1 -> 4 curve is a regression and
            // fails the bench; a single core physically cannot run the
            // replicas in parallel, so there it is only a diagnostic.
            if (std::thread::hardware_concurrency() > 1) {
                scaling_ok = false;
                std::fprintf(stderr,
                             "FAIL: QPS did not increase 1 -> 4 replicas "
                             "(%.1f -> %.1f) on a %u-core host\n",
                             scaling_qps[0], scaling_qps[2],
                             std::thread::hardware_concurrency());
            } else {
                std::printf("note: QPS did not increase 1 -> 4 replicas "
                            "(%.1f -> %.1f); single-core host cannot run "
                            "replicas in parallel\n",
                            scaling_qps[0], scaling_qps[2]);
            }
        }

        // Kill-one failover: 3 replicas, one hard-killed mid-run. Every
        // request must still complete (rerouted to a survivor), and at
        // least one must actually have been rerouted for the scenario to
        // have exercised anything.
        {
            std::vector<std::unique_ptr<PrivateEmbeddingService>> services;
            std::vector<std::unique_ptr<net::PirServerNode>> nodes;
            std::vector<net::ReplicaRouter::Endpoint> endpoints;
            for (std::size_t i = 0; i < 3; ++i) {
                services.push_back(world.MakeService());
                nodes.push_back(std::make_unique<net::PirServerNode>(
                    services.back().get(), net::PirServerNode::Options{}));
                endpoints.push_back({"127.0.0.1", nodes.back()->port()});
            }
            const RoutedRun run =
                RunRouted(world, endpoints, client_threads,
                          lookups_per_client, ref, nodes[1].get(), 0.3);
            PrintRun("killone_r3", run);
            failures += run.failures;
            mismatches += run.mismatches;
            if (run.rerouted == 0) {
                killone_rerouted_ok = false;
                std::fprintf(stderr,
                             "killone: no request was rerouted — the kill "
                             "landed after the load finished?\n");
            }
            if (run.healthy_at_end != 2) {
                std::fprintf(stderr,
                             "killone: expected 2 healthy replicas at end, "
                             "got %zu\n",
                             run.healthy_at_end);
            }
            json.push_back(NetRow("killone_r3", run, 3));
        }
    }

    std::printf("\nnetworked results bit-identical to in-process: %s\n",
                mismatches == 0 ? "YES" : "NO");
    std::printf("all requests completed: %s\n",
                failures == 0 ? "YES" : "NO");
    if (json_path != nullptr &&
        !bench::WriteBenchJson(json_path, "bench_replicated_serving", json)) {
        return 2;
    }
    return mismatches == 0 && failures == 0 && killone_rerouted_ok &&
                   scaling_ok
               ? 0
               : 1;
}

// Figure 12 — end-to-end latency breakdown of one private inference:
// client key generation (Gen), server PIR (Eval), client-server network
// (4G, 60 Mbit/s), and the on-device DNN.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/gpusim/cost_model.h"
#include "src/kernels/strategy.h"
#include "src/net/comm_model.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

struct AppLatency {
    std::string name;
    LatencyBreakdown breakdown;
};

AppLatency Breakdown(const std::string& name, std::uint64_t vocab,
                     std::size_t entry_bytes, const CodesignConfig& codesign,
                     std::uint64_t dnn_flops) {
    const GpuCostModel gpu_model;
    const NetworkSpec net = NetworkSpec::FourG();
    const ClientDeviceSpec dev = ClientDeviceSpec::CoreI3();

    auto table_cost = [&](std::uint64_t entries, std::uint64_t q,
                          std::size_t row_bytes, double* gen, double* pir,
                          std::size_t* up, std::size_t* down) {
        const std::uint64_t bin =
            std::max<std::uint64_t>(1, (entries + q - 1) / q);
        const Pbr pbr(entries, bin);
        *gen += KeyGenLatency(dev, pbr.num_bins(), pbr.bin_log_domain());
        StrategyConfig config;
        config.kind = StrategyKind::kMemBoundTree;
        config.log_domain = pbr.bin_log_domain();
        config.num_entries = pbr.bin_size();
        config.entry_bytes = row_bytes;
        config.prf = PrfKind::kChacha20;
        config.batch = static_cast<std::uint32_t>(pbr.num_bins());
        config.chunk_k = std::min<std::uint64_t>(128, pbr.bin_size());
        *pir += gpu_model.Estimate(MakeStrategy(config)->Analyze()).latency_sec;
        *up += pbr.UploadBytesPerServer();
        *down += pbr.DownloadBytes(row_bytes);
    };

    AppLatency out;
    out.name = name;
    const std::size_t row_bytes =
        entry_bytes * (1 + static_cast<std::size_t>(codesign.colocate_c));
    double gen = 0;
    double pir = 0;
    std::size_t up = 0;
    std::size_t down = 0;
    table_cost(vocab, codesign.q_full, row_bytes, &gen, &pir, &up, &down);
    if (codesign.hot_size > 0) {
        table_cost(codesign.hot_size, codesign.q_hot, row_bytes, &gen, &pir,
                   &up, &down);
    }
    out.breakdown.gen_sec = gen;
    out.breakdown.pir_sec = pir;
    out.breakdown.network_sec = NetworkLatency(net, up, down);
    out.breakdown.dnn_sec = DnnLatency(dev, dnn_flops);
    return out;
}

}  // namespace

int main() {
    std::printf("=== Figure 12: end-to-end inference latency breakdown ===\n");
    std::printf("(co-design configs representative of the Fig. 11 operating "
                "points; 4G network)\n\n");

    std::vector<AppLatency> apps;
    {
        CodesignConfig c;
        c.hot_size = 2'048 / 8;
        c.colocate_c = 4;
        c.q_hot = 16;
        c.q_full = 4;
        apps.push_back(Breakdown("wikitext2-like", 2'048, 128, c,
                                 /*dnn_flops=*/2ull * 2048 * 32 + 2048));
    }
    {
        CodesignConfig c;
        c.hot_size = 27'000 / 5;
        c.colocate_c = 2;
        c.q_hot = 32;
        c.q_full = 8;
        apps.push_back(Breakdown("movielens-like", 27'000, 64, c,
                                 /*dnn_flops=*/2ull * 32 * 48));
    }
    {
        CodesignConfig c;
        c.hot_size = 262'144 / 8;
        c.colocate_c = 1;
        c.q_hot = 4;
        c.q_full = 2;
        apps.push_back(Breakdown("taobao-like", 262'144, 64, c,
                                 /*dnn_flops=*/2ull * 32 * 48));
    }

    TablePrinter table({"application", "Gen (ms)", "PIR (ms)", "network (ms)",
                        "DNN (ms)", "total (ms)", "< 500 ms SLA"});
    for (const auto& app : apps) {
        const auto& b = app.breakdown;
        table.AddRow({app.name, TablePrinter::Num(b.gen_sec * 1e3, 2),
                      TablePrinter::Num(b.pir_sec * 1e3, 2),
                      TablePrinter::Num(b.network_sec * 1e3, 1),
                      TablePrinter::Num(b.dnn_sec * 1e3, 3),
                      TablePrinter::Num(b.total_sec() * 1e3, 1),
                      b.total_sec() < 0.5 ? "yes" : "NO"});
    }
    table.Print();
    std::printf(
        "\nShape check vs paper: with GPU acceleration, PIR is no longer "
        "the sole dominating component — the network round trip is "
        "comparable or larger, and every application fits the 500 ms "
        "SLA.\n");
    return 0;
}

// Figure 17 — Pareto frontier of communication vs computation with model
// quality fixed to within 2% of the clean baseline, batch-PIR vs
// batch-PIR + co-design.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

using namespace gpudpf;
using namespace gpudpf::bench;

namespace {

bool WithinTwoPercent(double quality, double clean, bool higher_is_better) {
    return higher_is_better ? quality >= clean * 0.98
                            : quality <= clean * 1.02;
}

std::vector<const SweepPoint*> ParetoSet(
    const std::vector<SweepPoint>& frontier, double clean,
    bool higher_is_better) {
    std::vector<const SweepPoint*> ok;
    for (const auto& p : frontier) {
        if (WithinTwoPercent(p.quality, clean, higher_is_better)) {
            ok.push_back(&p);
        }
    }
    std::vector<const SweepPoint*> pareto;
    for (const auto* p : ok) {
        bool dominated = false;
        for (const auto* q : ok) {
            if (q == p) continue;
            if (q->comm_bytes <= p->comm_bytes &&
                q->prf_per_inference <= p->prf_per_inference &&
                (q->comm_bytes < p->comm_bytes ||
                 q->prf_per_inference < p->prf_per_inference)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) pareto.push_back(p);
    }
    std::sort(pareto.begin(), pareto.end(),
              [](const SweepPoint* a, const SweepPoint* b) {
                  return a->comm_bytes < b->comm_bytes;
              });
    return pareto;
}

}  // namespace

int main() {
    std::printf(
        "=== Figure 17: communication vs computation Pareto (quality "
        "within 2%% of baseline) ===\n\n");
    auto run = [&](auto& app, const std::vector<std::uint64_t>& q_grid) {
        const auto quality_fn = app.MakeQualityFn();
        CodesignEvaluator evaluator(app.emb->vocab(), app.entry_bytes(),
                                    &app.stats, app.eval_wanted, quality_fn,
                                    PrfKind::kChacha20, 256, app.cost_scale);
        const bool higher = app.Targets().higher_is_better;
        const auto base =
            ParetoSet(evaluator.BaselineFrontier(q_grid), app.clean_quality,
                      higher);
        const auto co =
            ParetoSet(evaluator.CodesignFrontier(q_grid), app.clean_quality,
                      higher);
        std::printf("--- %s ---\n", app.name.c_str());
        TablePrinter table({"scheme", "comm/inference", "PRFs/inference",
                            "quality"});
        for (const auto* p : base) {
            table.AddRow({"batch-pir", FormatBytes(p->comm_bytes),
                          FormatCount(p->prf_per_inference),
                          TablePrinter::Num(p->quality, 4)});
        }
        for (const auto* p : co) {
            table.AddRow({"batch-pir w/ co-design",
                          FormatBytes(p->comm_bytes),
                          FormatCount(p->prf_per_inference),
                          TablePrinter::Num(p->quality, 4)});
        }
        table.Print();
        std::printf("\n");
    };

    LmApp wikitext = BuildWikiTextApp();
    run(wikitext, {1, 2, 4, 8});
    RecApp movielens = BuildMovieLensApp();
    run(movielens, {2, 4, 8, 16, 32});
    RecApp taobao = BuildTaobaoApp();
    run(taobao, {1, 2, 4});

    std::printf(
        "Shape check vs paper: the co-design curve dominates plain "
        "batch-PIR — at matched communication it needs less computation "
        "and vice versa.\n");
    return 0;
}

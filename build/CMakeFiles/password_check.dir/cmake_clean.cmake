file(REMOVE_RECURSE
  "CMakeFiles/password_check.dir/examples/password_check.cc.o"
  "CMakeFiles/password_check.dir/examples/password_check.cc.o.d"
  "examples/password_check"
  "examples/password_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/password_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for password_check.
# This may be replaced when dependencies are built.

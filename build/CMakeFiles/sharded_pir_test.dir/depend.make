# Empty dependencies file for sharded_pir_test.
# This may be replaced when dependencies are built.

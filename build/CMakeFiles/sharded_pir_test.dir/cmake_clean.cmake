file(REMOVE_RECURSE
  "CMakeFiles/sharded_pir_test.dir/tests/sharded_pir_test.cc.o"
  "CMakeFiles/sharded_pir_test.dir/tests/sharded_pir_test.cc.o.d"
  "tests/sharded_pir_test"
  "tests/sharded_pir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_pir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/gpudpf_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/gpudpf_bench_common.dir/bench/bench_common.cc.o.d"
  "libgpudpf_bench_common.a"
  "libgpudpf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpudpf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgpudpf_bench_common.a"
)

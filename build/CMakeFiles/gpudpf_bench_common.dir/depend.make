# Empty dependencies file for gpudpf_bench_common.
# This may be replaced when dependencies are built.

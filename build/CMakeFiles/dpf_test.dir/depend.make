# Empty dependencies file for dpf_test.
# This may be replaced when dependencies are built.

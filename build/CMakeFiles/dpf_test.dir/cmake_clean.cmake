file(REMOVE_RECURSE
  "CMakeFiles/dpf_test.dir/tests/dpf_test.cc.o"
  "CMakeFiles/dpf_test.dir/tests/dpf_test.cc.o.d"
  "tests/dpf_test"
  "tests/dpf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_latency_breakdown.
# This may be replaced when dependencies are built.

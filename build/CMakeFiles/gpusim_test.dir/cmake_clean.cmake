file(REMOVE_RECURSE
  "CMakeFiles/gpusim_test.dir/tests/gpusim_test.cc.o"
  "CMakeFiles/gpusim_test.dir/tests/gpusim_test.cc.o.d"
  "tests/gpusim_test"
  "tests/gpusim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig17_comm_comp_pareto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_comm_comp_pareto.dir/bench/bench_fig17_comm_comp_pareto.cc.o"
  "CMakeFiles/bench_fig17_comm_comp_pareto.dir/bench/bench_fig17_comm_comp_pareto.cc.o.d"
  "bench/bench_fig17_comm_comp_pareto"
  "bench/bench_fig17_comm_comp_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_comm_comp_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

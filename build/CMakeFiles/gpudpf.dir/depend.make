# Empty dependencies file for gpudpf.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/batchpir/pbr.cc" "CMakeFiles/gpudpf.dir/src/batchpir/pbr.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/batchpir/pbr.cc.o.d"
  "/root/repo/src/batchpir/pbr_session.cc" "CMakeFiles/gpudpf.dir/src/batchpir/pbr_session.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/batchpir/pbr_session.cc.o.d"
  "/root/repo/src/codesign/layout.cc" "CMakeFiles/gpudpf.dir/src/codesign/layout.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/codesign/layout.cc.o.d"
  "/root/repo/src/codesign/planner.cc" "CMakeFiles/gpudpf.dir/src/codesign/planner.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/codesign/planner.cc.o.d"
  "/root/repo/src/codesign/sweep.cc" "CMakeFiles/gpudpf.dir/src/codesign/sweep.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/codesign/sweep.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/gpudpf.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/gpudpf.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "CMakeFiles/gpudpf.dir/src/common/table_printer.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/common/table_printer.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/gpudpf.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/common/u128.cc" "CMakeFiles/gpudpf.dir/src/common/u128.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/common/u128.cc.o.d"
  "/root/repo/src/common/zipf.cc" "CMakeFiles/gpudpf.dir/src/common/zipf.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/common/zipf.cc.o.d"
  "/root/repo/src/core/service.cc" "CMakeFiles/gpudpf.dir/src/core/service.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/core/service.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "CMakeFiles/gpudpf.dir/src/crypto/aes128.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/chacha20.cc" "CMakeFiles/gpudpf.dir/src/crypto/chacha20.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/chacha20.cc.o.d"
  "/root/repo/src/crypto/highwayhash.cc" "CMakeFiles/gpudpf.dir/src/crypto/highwayhash.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/highwayhash.cc.o.d"
  "/root/repo/src/crypto/prf.cc" "CMakeFiles/gpudpf.dir/src/crypto/prf.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/prf.cc.o.d"
  "/root/repo/src/crypto/prg.cc" "CMakeFiles/gpudpf.dir/src/crypto/prg.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/prg.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "CMakeFiles/gpudpf.dir/src/crypto/sha256.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/siphash.cc" "CMakeFiles/gpudpf.dir/src/crypto/siphash.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/crypto/siphash.cc.o.d"
  "/root/repo/src/dpf/dpf.cc" "CMakeFiles/gpudpf.dir/src/dpf/dpf.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/dpf/dpf.cc.o.d"
  "/root/repo/src/gpusim/cost_model.cc" "CMakeFiles/gpudpf.dir/src/gpusim/cost_model.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/gpusim/cost_model.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "CMakeFiles/gpudpf.dir/src/gpusim/device.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/gpusim/device.cc.o.d"
  "/root/repo/src/kernels/branch_parallel.cc" "CMakeFiles/gpudpf.dir/src/kernels/branch_parallel.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/branch_parallel.cc.o.d"
  "/root/repo/src/kernels/coop_groups.cc" "CMakeFiles/gpudpf.dir/src/kernels/coop_groups.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/coop_groups.cc.o.d"
  "/root/repo/src/kernels/cpu_eval.cc" "CMakeFiles/gpudpf.dir/src/kernels/cpu_eval.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/cpu_eval.cc.o.d"
  "/root/repo/src/kernels/level_by_level.cc" "CMakeFiles/gpudpf.dir/src/kernels/level_by_level.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/level_by_level.cc.o.d"
  "/root/repo/src/kernels/membound_tree.cc" "CMakeFiles/gpudpf.dir/src/kernels/membound_tree.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/membound_tree.cc.o.d"
  "/root/repo/src/kernels/scheduler.cc" "CMakeFiles/gpudpf.dir/src/kernels/scheduler.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/scheduler.cc.o.d"
  "/root/repo/src/kernels/strategy.cc" "CMakeFiles/gpudpf.dir/src/kernels/strategy.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/kernels/strategy.cc.o.d"
  "/root/repo/src/ml/embedding.cc" "CMakeFiles/gpudpf.dir/src/ml/embedding.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/ml/embedding.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "CMakeFiles/gpudpf.dir/src/ml/metrics.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/ml/metrics.cc.o.d"
  "/root/repo/src/ml/models.cc" "CMakeFiles/gpudpf.dir/src/ml/models.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/ml/models.cc.o.d"
  "/root/repo/src/net/comm_model.cc" "CMakeFiles/gpudpf.dir/src/net/comm_model.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/net/comm_model.cc.o.d"
  "/root/repo/src/pir/answer_engine.cc" "CMakeFiles/gpudpf.dir/src/pir/answer_engine.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/pir/answer_engine.cc.o.d"
  "/root/repo/src/pir/protocol.cc" "CMakeFiles/gpudpf.dir/src/pir/protocol.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/pir/protocol.cc.o.d"
  "/root/repo/src/pir/table.cc" "CMakeFiles/gpudpf.dir/src/pir/table.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/pir/table.cc.o.d"
  "/root/repo/src/workloads/dataset.cc" "CMakeFiles/gpudpf.dir/src/workloads/dataset.cc.o" "gcc" "CMakeFiles/gpudpf.dir/src/workloads/dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libgpudpf.a"
)

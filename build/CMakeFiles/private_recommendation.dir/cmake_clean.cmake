file(REMOVE_RECURSE
  "CMakeFiles/private_recommendation.dir/examples/private_recommendation.cc.o"
  "CMakeFiles/private_recommendation.dir/examples/private_recommendation.cc.o.d"
  "examples/private_recommendation"
  "examples/private_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

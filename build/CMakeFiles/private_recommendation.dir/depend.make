# Empty dependencies file for private_recommendation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/private_language_model.dir/examples/private_language_model.cc.o"
  "CMakeFiles/private_language_model.dir/examples/private_language_model.cc.o.d"
  "examples/private_language_model"
  "examples/private_language_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_language_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

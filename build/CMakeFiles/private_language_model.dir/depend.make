# Empty dependencies file for private_language_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_end_to_end_throughput.dir/bench/bench_fig11_end_to_end_throughput.cc.o"
  "CMakeFiles/bench_fig11_end_to_end_throughput.dir/bench/bench_fig11_end_to_end_throughput.cc.o.d"
  "bench/bench_fig11_end_to_end_throughput"
  "bench/bench_fig11_end_to_end_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_end_to_end_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig15_tab4_gpu_vs_cpu.
# This may be replaced when dependencies are built.

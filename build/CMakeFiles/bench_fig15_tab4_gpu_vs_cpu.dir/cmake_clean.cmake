file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_tab4_gpu_vs_cpu.dir/bench/bench_fig15_tab4_gpu_vs_cpu.cc.o"
  "CMakeFiles/bench_fig15_tab4_gpu_vs_cpu.dir/bench/bench_fig15_tab4_gpu_vs_cpu.cc.o.d"
  "bench/bench_fig15_tab4_gpu_vs_cpu"
  "bench/bench_fig15_tab4_gpu_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_tab4_gpu_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pir_test.dir/tests/pir_test.cc.o"
  "CMakeFiles/pir_test.dir/tests/pir_test.cc.o.d"
  "tests/pir_test"
  "tests/pir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pir_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig19_movielens_quality_tradeoff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_prf_comparison.dir/bench/bench_tab05_prf_comparison.cc.o"
  "CMakeFiles/bench_tab05_prf_comparison.dir/bench/bench_tab05_prf_comparison.cc.o.d"
  "bench/bench_tab05_prf_comparison"
  "bench/bench_tab05_prf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_prf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

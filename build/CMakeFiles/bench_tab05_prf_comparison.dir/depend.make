# Empty dependencies file for bench_tab05_prf_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/codesign_test.dir/tests/codesign_test.cc.o"
  "CMakeFiles/codesign_test.dir/tests/codesign_test.cc.o.d"
  "tests/codesign_test"
  "tests/codesign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

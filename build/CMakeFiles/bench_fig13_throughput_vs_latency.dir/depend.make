# Empty dependencies file for bench_fig13_throughput_vs_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_codesign_savings.dir/bench/bench_fig16_codesign_savings.cc.o"
  "CMakeFiles/bench_fig16_codesign_savings.dir/bench/bench_fig16_codesign_savings.cc.o.d"
  "bench/bench_fig16_codesign_savings"
  "bench/bench_fig16_codesign_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_codesign_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig16_codesign_savings.
# This may be replaced when dependencies are built.

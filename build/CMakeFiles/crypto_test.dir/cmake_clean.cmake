file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/tests/crypto_test.cc.o"
  "CMakeFiles/crypto_test.dir/tests/crypto_test.cc.o.d"
  "tests/crypto_test"
  "tests/crypto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_membound_memory_k.dir/bench/bench_fig08_membound_memory_k.cc.o"
  "CMakeFiles/bench_fig08_membound_memory_k.dir/bench/bench_fig08_membound_memory_k.cc.o.d"
  "bench/bench_fig08_membound_memory_k"
  "bench/bench_fig08_membound_memory_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_membound_memory_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig08_membound_memory_k.
# This may be replaced when dependencies are built.

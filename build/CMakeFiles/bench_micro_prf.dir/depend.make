# Empty dependencies file for bench_micro_prf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_prf.dir/bench/bench_micro_prf.cc.o"
  "CMakeFiles/bench_micro_prf.dir/bench/bench_micro_prf.cc.o.d"
  "bench/bench_micro_prf"
  "bench/bench_micro_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

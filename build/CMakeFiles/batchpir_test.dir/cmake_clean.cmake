file(REMOVE_RECURSE
  "CMakeFiles/batchpir_test.dir/tests/batchpir_test.cc.o"
  "CMakeFiles/batchpir_test.dir/tests/batchpir_test.cc.o.d"
  "tests/batchpir_test"
  "tests/batchpir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batchpir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for batchpir_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig20_taobao_quality_tradeoff.
# This may be replaced when dependencies are built.

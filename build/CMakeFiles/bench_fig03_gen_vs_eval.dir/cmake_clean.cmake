file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_gen_vs_eval.dir/bench/bench_fig03_gen_vs_eval.cc.o"
  "CMakeFiles/bench_fig03_gen_vs_eval.dir/bench/bench_fig03_gen_vs_eval.cc.o.d"
  "bench/bench_fig03_gen_vs_eval"
  "bench/bench_fig03_gen_vs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_gen_vs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig03_gen_vs_eval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dpf.dir/bench/bench_micro_dpf.cc.o"
  "CMakeFiles/bench_micro_dpf.dir/bench/bench_micro_dpf.cc.o.d"
  "bench/bench_micro_dpf"
  "bench/bench_micro_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_micro_dpf.
# This may be replaced when dependencies are built.

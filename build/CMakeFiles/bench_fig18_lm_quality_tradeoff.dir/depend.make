# Empty dependencies file for bench_fig18_lm_quality_tradeoff.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig06_strategy_compute_memory.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig14_entry_size_fusion.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_entry_size_fusion.dir/bench/bench_fig14_entry_size_fusion.cc.o"
  "CMakeFiles/bench_fig14_entry_size_fusion.dir/bench/bench_fig14_entry_size_fusion.cc.o.d"
  "bench/bench_fig14_entry_size_fusion"
  "bench/bench_fig14_entry_size_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_entry_size_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

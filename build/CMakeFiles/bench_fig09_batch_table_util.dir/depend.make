# Empty dependencies file for bench_fig09_batch_table_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_batch_table_util.dir/bench/bench_fig09_batch_table_util.cc.o"
  "CMakeFiles/bench_fig09_batch_table_util.dir/bench/bench_fig09_batch_table_util.cc.o.d"
  "bench/bench_fig09_batch_table_util"
  "bench/bench_fig09_batch_table_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_batch_table_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(batchpir_test "/root/repo/build/tests/batchpir_test")
set_tests_properties(batchpir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(codesign_test "/root/repo/build/tests/codesign_test")
set_tests_properties(codesign_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(crypto_test "/root/repo/build/tests/crypto_test")
set_tests_properties(crypto_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(dpf_test "/root/repo/build/tests/dpf_test")
set_tests_properties(dpf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(gpusim_test "/root/repo/build/tests/gpusim_test")
set_tests_properties(gpusim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(kernels_test "/root/repo/build/tests/kernels_test")
set_tests_properties(kernels_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(pir_test "/root/repo/build/tests/pir_test")
set_tests_properties(pir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sharded_pir_test "/root/repo/build/tests/sharded_pir_test")
set_tests_properties(sharded_pir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;82;add_test;/root/repo/CMakeLists.txt;0;")

// Private on-device next-word prediction (paper Section 2.2, WikiText2
// application): word embeddings for the private context tokens are fetched
// with batch-PIR; the small LM head runs on-device.
//
//   build/examples/private_language_model
#include <cstdio>

#include "src/core/service.h"
#include "src/ml/models.h"

using namespace gpudpf;

int main() {
    LmWorkloadSpec spec;
    spec.name = "wikitext-mini";
    spec.vocab = 1'024;
    spec.dim = 24;
    spec.num_train = 8'000;
    spec.num_test = 1'500;
    spec.context_len = 8;
    spec.num_clusters = 16;
    spec.seed = 21;
    std::printf("== private on-device language model ==\n");
    const LmDataset dataset = GenerateLmDataset(spec);
    const AccessStats stats = ComputeLmStats(dataset, 4);

    EmbeddingTable emb(spec.vocab, spec.dim);
    Rng rng(7);
    emb.InitRandom(rng, 0.1f);
    FeedforwardLm lm(spec.vocab, spec.dim, 32, 13);
    std::printf("training feedforward LM (vocab=%llu)...\n",
                static_cast<unsigned long long>(spec.vocab));
    lm.Train(dataset.train, &emb, /*epochs=*/2, /*lr=*/0.1f);
    const double clean_ppl = lm.EvaluatePerplexity(dataset.test, emb, nullptr);
    std::printf("perplexity with all embeddings: %.1f (uniform would be %llu)\n",
                clean_ppl, static_cast<unsigned long long>(spec.vocab));

    // Words co-occur heavily -> co-location shines for language (paper:
    // best C is 4-5 for the LM task).
    ServiceConfig config;
    config.prf = PrfKind::kChacha20;
    config.codesign.hot_size = spec.vocab / 8;
    config.codesign.colocate_c = 4;
    config.codesign.q_hot = 12;
    config.codesign.q_full = 4;
    config.dnn_flops = lm.ForwardFlops();
    PrivateEmbeddingService service(emb, stats, config);
    auto client = service.MakeClient();

    std::printf("\nprivate next-word predictions:\n");
    std::vector<float> logits;
    for (int q = 0; q < 5; ++q) {
        const LmSample& s = dataset.test[q];
        auto lookup = client->Lookup(s.context);
        std::vector<float> pooled(spec.dim, 0.0f);
        for (std::size_t i = 0; i < s.context.size(); ++i) {
            if (!lookup.retrieved[i]) continue;
            for (int d = 0; d < spec.dim; ++d) {
                pooled[d] += lookup.embeddings[i][d];
            }
        }
        for (auto& v : pooled) v /= static_cast<float>(s.context.size());
        lm.Logits(pooled, &logits);
        std::uint64_t argmax = 0;
        for (std::uint64_t v = 1; v < spec.vocab; ++v) {
            if (logits[v] > logits[argmax]) argmax = v;
        }
        int got = 0;
        for (const bool r : lookup.retrieved) got += r ? 1 : 0;
        std::printf(
            "  ctx %d: %d/%zu tokens served privately, predicted %llu "
            "(truth %llu), comm %.1f KB\n",
            q, got, s.context.size(),
            static_cast<unsigned long long>(argmax),
            static_cast<unsigned long long>(s.next),
            (lookup.upload_bytes + lookup.download_bytes) / 1024.0);
    }

    Rng plan_rng(29);
    std::vector<std::vector<bool>> masks;
    for (const auto& s : dataset.test) {
        masks.push_back(service.planner().Plan(s.context, plan_rng).retrieved);
    }
    const double private_ppl = lm.EvaluatePerplexity(dataset.test, emb, &masks);
    std::printf("\nperplexity with private retrieval: %.1f (clean %.1f)\n",
                private_ppl, clean_ppl);
    return 0;
}

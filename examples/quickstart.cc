// Quickstart: one private embedding lookup through the two-server DPF-PIR
// protocol (paper Figure 2).
//
//   build/examples/quickstart
//
// A client retrieves row 123456 of a 1M-entry table without either server
// learning which row was touched.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/pir/protocol.h"
#include "src/pir/table.h"

using namespace gpudpf;

int main() {
    constexpr int kLogDomain = 20;           // 1M entries
    constexpr std::size_t kEntryBytes = 256;  // 2048-bit entries (paper default)
    const std::uint64_t kSecretIndex = 123'456;

    std::printf("== GPU-DPF PIR quickstart ==\n");
    std::printf("table: %d entries x %zu B\n", 1 << kLogDomain, kEntryBytes);

    // Both non-colluding servers hold a replica of the table.
    Rng rng(42);
    PirTable table(1 << kLogDomain, kEntryBytes);
    table.FillRandom(rng);
    PirServer server_a(&table);
    PirServer server_b(&table);

    // Client: Gen() produces one compact key per server.
    PirClient client(kLogDomain, PrfKind::kChacha20);
    Timer gen_timer;
    PirQuery query = client.Query(kSecretIndex);
    const double gen_ms = gen_timer.ElapsedMillis();
    std::printf("client Gen: %.3f ms, upload %zu B/server (vs %.1f MB naive)\n",
                gen_ms, query.UploadBytesPerServer(),
                (1 << kLogDomain) * 16.0 / 1e6);

    // Servers: Eval() + table product, independently.
    Timer eval_timer;
    const PirResponse ra =
        server_a.Answer(query.key_for_server0.data(),
                        query.key_for_server0.size());
    const PirResponse rb =
        server_b.Answer(query.key_for_server1.data(),
                        query.key_for_server1.size());
    const double eval_ms = eval_timer.ElapsedMillis();
    std::printf("servers Eval+matvec (host, sequential reference): %.1f ms\n",
                eval_ms);

    // Same answer through the sharded engine (bit-identical, scales with
    // the host's cores; see bench/bench_sharded_throughput.cc).
    PirServer sharded_a(&table, ShardingOptions{/*num_shards=*/8});
    PirServer sharded_b(&table, ShardingOptions{/*num_shards=*/8});
    Timer sharded_timer;
    const PirResponse sa =
        sharded_a.Answer(query.key_for_server0.data(),
                         query.key_for_server0.size());
    const PirResponse sb =
        sharded_b.Answer(query.key_for_server1.data(),
                         query.key_for_server1.size());
    const double sharded_ms = sharded_timer.ElapsedMillis();
    std::printf("servers Eval+matvec (host, 8 shards on pool): %.1f ms\n",
                sharded_ms);
    const bool shards_match = sa == ra && sb == rb;
    std::printf("sharded responses bit-identical to reference: %s\n",
                shards_match ? "YES" : "NO");

    // Client: add the two shares -> the exact entry.
    const auto entry = client.Reconstruct(ra, rb, kEntryBytes);
    const auto expected = table.EntryBytes(kSecretIndex);
    std::printf("retrieved entry matches direct read: %s\n",
                entry == expected ? "YES" : "NO");
    return entry == expected && shards_match ? 0 : 1;
}

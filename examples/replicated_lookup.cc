// Replicated networked serving: private lookups through a health-checked
// router over two loopback PIR server nodes, with a live failover.
//
//   build/examples/replicated_lookup
//
// Three identically-configured PrivateEmbeddingService instances are
// built from the same deterministic data: one per server node (each
// behind a TCP PirServerNode), and one client-side "planning" instance
// the router uses for key generation and reconstruction. Because every
// replica's tables are bit-identical, ANY node can answer ANY request
// with exactly the bytes an in-process lookup would produce — which is
// what makes the router's transparent retry sound. The example proves
// both: networked results match an in-process reference byte for byte,
// and a hard-killed node is survived without losing a request.
#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/core/service.h"
#include "src/ml/embedding.h"
#include "src/net/replica_router.h"
#include "src/net/server_node.h"
#include "src/workloads/dataset.h"

using namespace gpudpf;

namespace {

std::unique_ptr<PrivateEmbeddingService> MakeService(
    const EmbeddingTable& emb, const AccessStats& stats) {
    ServiceConfig config;
    config.codesign.hot_size = 128;
    config.codesign.q_hot = 16;
    config.codesign.q_full = 8;
    return std::make_unique<PrivateEmbeddingService>(emb, stats, config);
}

}  // namespace

int main() {
    std::printf("== replicated private embedding serving ==\n");

    // Deterministic world shared by every instance.
    RecWorkloadSpec spec;
    spec.name = "replicated-example";
    spec.vocab = 1'024;
    spec.num_train = 2'000;
    spec.num_test = 100;
    spec.min_history = 4;
    spec.max_history = 10;
    spec.num_clusters = 8;
    spec.seed = 17;
    const RecDataset dataset = GenerateRecDataset(spec);
    const AccessStats stats = ComputeRecStats(dataset, 4);
    EmbeddingTable emb(spec.vocab, spec.dim);
    Rng rng(7);
    emb.InitRandom(rng, 0.2f);

    // Two server nodes on ephemeral loopback ports, plus the client-side
    // planning instance and an in-process reference.
    auto replica0 = MakeService(emb, stats);
    auto replica1 = MakeService(emb, stats);
    net::PirServerNode node0(replica0.get(), {});
    net::PirServerNode node1(replica1.get(), {});
    std::printf("nodes listening on 127.0.0.1:%u and 127.0.0.1:%u\n",
                static_cast<unsigned>(node0.port()),
                static_cast<unsigned>(node1.port()));

    auto planning = MakeService(emb, stats);
    auto reference = MakeService(emb, stats);
    net::ReplicaRouter router(
        planning.get(),
        {{"127.0.0.1", node0.port()}, {"127.0.0.1", node1.port()}}, {});

    // Same-seed clients: the planning client's RNG stream matches the
    // reference client's, so networked results must be bit-identical.
    auto remote_client = planning->MakeClient();
    auto ref_client = reference->MakeClient();

    const std::vector<std::vector<std::uint64_t>> batches = {
        {3, 700, 901}, {42, 65, 128, 1'000}, {7}};
    bool all_match = true;
    for (const auto& wanted : batches) {
        const auto got = router.Lookup(remote_client.get(), wanted);
        const auto want = ref_client->Lookup(wanted);
        const bool match = got.result.embeddings == want.embeddings &&
                           got.result.retrieved == want.retrieved;
        all_match = all_match && match;
        std::printf("lookup of %zu ids via replica %zu: %s\n", wanted.size(),
                    got.replica, match ? "bit-identical to in-process" : "MISMATCH");
    }

    // Failover: kill node 0 hard (connections die mid-stream). The next
    // lookups that pick it are transparently retried on node 1; after a
    // health sweep the dead node stops being picked at all.
    std::printf("\nhard-killing node 0...\n");
    node0.Abort();
    bool failover_match = true;
    for (int i = 0; i < 4; ++i) {
        const auto got = router.Lookup(remote_client.get(), {11, 500, 900});
        const auto want = ref_client->Lookup({11, 500, 900});
        failover_match = failover_match &&
                         got.result.embeddings == want.embeddings;
        std::printf("lookup via replica %zu%s: %s\n", got.replica,
                    got.rerouted ? " (rerouted)" : "",
                    failover_match ? "ok" : "MISMATCH");
    }
    router.CheckNow();
    const auto router_stats = router.stats();
    std::printf("\n%zu/%u replicas healthy, %llu lookups, %llu failovers\n",
                router.healthy_count(), 2u,
                static_cast<unsigned long long>(router_stats.requests),
                static_cast<unsigned long long>(router_stats.failovers));
    std::printf("all results bit-identical to in-process: %s\n",
                all_match && failover_match ? "YES" : "NO");
    return all_match && failover_match && router.healthy_count() == 1 ? 0 : 1;
}

// Private on-device recommendation (the paper's primary use case,
// Sections 2 and 4): a MovieLens-like ranker runs on-device; its private
// user-history embeddings are fetched from two servers with batch-PIR and
// the full co-design stack (hot-table split + co-location + oblivious
// query planning).
//
//   build/examples/private_recommendation
#include <cstdio>

#include "src/core/service.h"
#include "src/core/serving.h"
#include "src/ml/models.h"

using namespace gpudpf;

int main() {
    // A scaled-down MovieLens-like world so the example runs in seconds.
    RecWorkloadSpec spec;
    spec.name = "movielens-mini";
    spec.vocab = 2'048;
    spec.num_train = 20'000;
    spec.num_test = 1'000;
    spec.min_history = 6;
    spec.max_history = 14;
    spec.num_clusters = 12;
    spec.user_clusters = 3;
    spec.signal_scale = 5.0;
    spec.seed = 31;
    std::printf("== private on-device recommendation ==\n");
    std::printf("generating %s (vocab=%llu)...\n", spec.name.c_str(),
                static_cast<unsigned long long>(spec.vocab));
    const RecDataset dataset = GenerateRecDataset(spec);
    const AccessStats stats = ComputeRecStats(dataset, 4);

    // Train the on-device model + embedding table (server side, offline).
    EmbeddingTable emb(spec.vocab, spec.dim);
    Rng rng(5);
    emb.InitRandom(rng, 0.1f);
    MlpRanker model(spec.dim, 32, 9);
    std::printf("training 2-layer MLP ranker...\n");
    model.Train(dataset.train, &emb, /*epochs=*/6, /*lr=*/0.05f);
    const double clean_auc = model.EvaluateAuc(dataset.test, emb, nullptr);
    std::printf("AUC with all embeddings available: %.4f\n", clean_auc);

    // Stand up the private embedding service with co-design enabled.
    ServiceConfig config;
    config.prf = PrfKind::kChacha20;
    config.codesign.hot_size = spec.vocab / 8;
    config.codesign.colocate_c = 2;
    config.codesign.q_hot = 48;
    config.codesign.q_full = 16;
    config.dnn_flops = model.ForwardFlops();
    PrivateEmbeddingService service(emb, stats, config);

    // Run private inference on a few users. Each user device is its own
    // client; the lookups are submitted as streaming RequestHandles so the
    // serving front-end pools all five requests' answer work into one
    // batch and delivers each device's hot-table share the moment it
    // completes — long before the full-table jobs finish.
    std::printf("\nprivate inferences (PIR-served embeddings, %d async clients):\n",
                5);
    std::vector<std::unique_ptr<PrivateEmbeddingService::Client>> clients;
    std::vector<ServingFrontEnd::RequestHandle> handles;
    for (int u = 0; u < 5; ++u) {
        clients.push_back(service.MakeClient());
        handles.push_back(service.front_end().SubmitRequest(
            {clients.back().get(), dataset.test[u].history}));
        if (!handles.back().ok()) {
            std::fprintf(stderr, "request %d rejected: %s\n", u,
                         AdmissionStatusName(handles.back().admission()));
            return 1;
        }
    }
    double retrieved_total = 0;
    double wanted_total = 0;
    for (int u = 0; u < 5; ++u) {
        const RecSample& s = dataset.test[u];
        // Consume the per-table partials as they stream in (a device could
        // start ranking hot-served embeddings here), then take the final
        // assembled result — bit-identical to the one-shot Lookup.
        PrivateEmbeddingService::TablePartial partial;
        while (handles[u].WaitPartial(&partial)) {
            std::size_t served = 0;
            for (const bool b : partial.served) served += b ? 1 : 0;
            std::printf(
                "  user %d: %s partial, %zu/%zu entries, %zu B down\n", u,
                partial.table ==
                        PrivateEmbeddingService::TablePartial::Table::kHot
                    ? "hot "
                    : "full",
                served, partial.served.size(), partial.download_bytes);
        }
        auto lookup = handles[u].Result();
        std::vector<float> user(spec.dim, 0.0f);
        int got = 0;
        for (std::size_t i = 0; i < s.history.size(); ++i) {
            if (!lookup.retrieved[i]) continue;
            for (int d = 0; d < spec.dim; ++d) {
                user[d] += lookup.embeddings[i][d];
            }
            ++got;
        }
        for (auto& v : user) v /= static_cast<float>(s.history.size());
        const float p = model.Forward(user, emb.Row(s.candidate));
        retrieved_total += got;
        wanted_total += static_cast<double>(s.history.size());
        std::printf(
            "  user %d: %2d/%2zu lookups served, click prob %.3f, "
            "comm %zu B up + %zu B down, e2e latency %.1f ms\n",
            u, got, s.history.size(), p, lookup.upload_bytes,
            lookup.download_bytes, lookup.latency.total_sec() * 1e3);
    }
    std::printf("\nretrieval rate over the sampled users: %.1f%%\n",
                100.0 * retrieved_total / wanted_total);

    // Model quality under the private retrieval path for the whole test
    // split (planner replay, no crypto, for speed).
    std::printf("evaluating AUC under the oblivious retrieval plan...\n");
    Rng plan_rng(23);
    std::vector<std::vector<bool>> masks;
    for (const auto& s : dataset.test) {
        masks.push_back(service.planner().Plan(s.history, plan_rng).retrieved);
    }
    const double private_auc = model.EvaluateAuc(dataset.test, emb, &masks);
    std::printf("AUC with private retrieval: %.4f (clean %.4f)\n",
                private_auc, clean_auc);
    return 0;
}

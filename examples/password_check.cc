// Compromised-password checking via PIR — the paper's example of a
// non-ML application of the GPU DPF stack (Section 1.1: "our GPU PIR can
// be used to accelerate any PIR application such as checking compromised
// passwords").
//
// The breach corpus is bucketed by a hash prefix; the client privately
// retrieves its bucket and checks membership locally, so the service never
// learns which password (or even which hash prefix) was checked.
//
//   build/examples/password_check
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/sha256.h"
#include "src/pir/protocol.h"
#include "src/pir/table.h"

using namespace gpudpf;

namespace {

constexpr int kLogBuckets = 14;           // 16K buckets
constexpr std::size_t kSlotBytes = 8;     // truncated digest per slot
constexpr std::size_t kSlotsPerBucket = 16;

Sha256Digest HashPassword(const std::string& pw) {
    return Sha256(reinterpret_cast<const std::uint8_t*>(pw.data()), pw.size());
}

std::uint64_t BucketOf(const Sha256Digest& d) {
    std::uint64_t v = 0;
    std::memcpy(&v, d.data(), 8);
    return v & ((1ull << kLogBuckets) - 1);
}

}  // namespace

int main() {
    std::printf("== private compromised-password check ==\n");

    // Build the breach corpus: leaked passwords hashed into buckets.
    const std::vector<std::string> leaked = {
        "123456", "password", "qwerty", "letmein", "dragon",
        "111111", "iloveyou", "admin",  "monkey",  "hunter2"};
    PirTable table(1 << kLogBuckets, kSlotBytes * kSlotsPerBucket);
    std::vector<std::size_t> fill(1 << kLogBuckets, 0);
    for (const auto& pw : leaked) {
        const Sha256Digest d = HashPassword(pw);
        const std::uint64_t b = BucketOf(d);
        if (fill[b] >= kSlotsPerBucket) continue;
        std::vector<std::uint8_t> row = table.EntryBytes(b);
        std::memcpy(row.data() + fill[b] * kSlotBytes, d.data() + 8,
                    kSlotBytes);
        table.SetEntry(b, row.data(), row.size());
        ++fill[b];
    }
    std::printf("corpus: %zu leaked passwords in %d buckets\n", leaked.size(),
                1 << kLogBuckets);

    PirServer server_a(&table);
    PirServer server_b(&table);
    PirClient client(kLogBuckets, PrfKind::kChacha20);

    const std::vector<std::string> to_check = {"hunter2", "correct horse",
                                               "password", "s3cr3t!"};
    for (const auto& pw : to_check) {
        const Sha256Digest d = HashPassword(pw);
        const std::uint64_t bucket = BucketOf(d);

        // Privately fetch the bucket: neither server learns `bucket`.
        PirQuery q = client.Query(bucket);
        const auto ra = server_a.Answer(q.key_for_server0.data(),
                                        q.key_for_server0.size());
        const auto rb = server_b.Answer(q.key_for_server1.data(),
                                        q.key_for_server1.size());
        const auto row = client.Reconstruct(ra, rb, table.entry_bytes());

        // Local membership check against the truncated digest.
        bool compromised = false;
        for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
            if (std::memcmp(row.data() + s * kSlotBytes, d.data() + 8,
                            kSlotBytes) == 0) {
                compromised = true;
                break;
            }
        }
        std::printf("  %-14s -> %s (upload %zu B/server)\n", pw.c_str(),
                    compromised ? "COMPROMISED" : "ok",
                    q.UploadBytesPerServer());
    }
    return 0;
}
